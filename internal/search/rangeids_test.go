package search

import (
	"math/rand"
	"testing"

	"emdsearch/internal/core"
	"emdsearch/internal/emd"
)

func TestRangeIDsValidation(t *testing.T) {
	r := NewScanRanking([]float64{1})
	if _, _, err := RangeIDs(r, func(int) float64 { return 0 }, func(int) float64 { return 0 }, -1); err == nil {
		t.Error("accepted negative eps")
	}
	if _, _, err := RangeIDs(r, func(int) float64 { return 0 }, nil, 1); err == nil {
		t.Error("accepted nil upper")
	}
}

func TestRangeIDsMatchesScanAndSavesRefinements(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const d, dr, n = 12, 4, 300
	cost := emd.CostMatrix(emd.LinearCost(d))
	dist, err := emd.NewDist(cost)
	if err != nil {
		t.Fatal(err)
	}
	red, err := core.Adjacent(d, dr)
	if err != nil {
		t.Fatal(err)
	}
	env, err := core.NewEnvelope(cost, red, red)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]emd.Histogram, n)
	reduced := make([]emd.Histogram, n)
	for i := range data {
		data[i] = randomHistogram(rng, d)
		reduced[i] = red.Apply(data[i])
	}
	q := randomHistogram(rng, d)
	qr := red.Apply(q)
	refine := func(i int) float64 { return dist.Distance(q, data[i]) }
	upperFn := func(i int) float64 { return env.Upper.DistanceReduced(qr, reduced[i]) }

	for _, eps := range []float64{0.2, 0.5, 1.0, 2.5} {
		lowers := make([]float64, n)
		for i := range lowers {
			lowers[i] = env.Lower.DistanceReduced(qr, reduced[i])
		}
		ids, stats, err := RangeIDs(NewScanRanking(lowers), refine, upperFn, eps)
		if err != nil {
			t.Fatal(err)
		}
		want := map[int]bool{}
		for i := 0; i < n; i++ {
			if refine(i) <= eps {
				want[i] = true
			}
		}
		if len(ids) != len(want) {
			t.Fatalf("eps=%g: %d ids, scan finds %d", eps, len(ids), len(want))
		}
		for _, id := range ids {
			if !want[id] {
				t.Fatalf("eps=%g: spurious id %d", eps, id)
			}
		}
		if stats.Refinements+stats.AcceptedByUpper > stats.Pulled {
			t.Fatalf("inconsistent stats: %+v", stats)
		}
		// At large eps, upper-bound acceptance must be doing real work.
		if eps >= 2.5 && stats.AcceptedByUpper == 0 && len(ids) > 10 {
			t.Errorf("eps=%g: no upper-bound acceptances despite %d results", eps, len(ids))
		}
	}
}

func TestRangeIDsSortedAscending(t *testing.T) {
	lowers := []float64{0.1, 0.05, 0.2, 0.01}
	exact := []float64{0.15, 0.07, 0.25, 0.02}
	ids, _, err := RangeIDs(NewScanRanking(lowers),
		func(i int) float64 { return exact[i] },
		func(i int) float64 { return exact[i] + 0.01 }, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatalf("ids not ascending: %v", ids)
		}
	}
}
