package search

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// partition splits a global instance round-robin across n shards
// (gid % n), the ShardSet placement scheme: shard s holds global ids
// s, s+n, s+2n, ... and local index l on shard s is global id l·n+s.
func partition(filter, exact []float64, n int) (shardFilter, shardExact [][]float64) {
	shardFilter = make([][]float64, n)
	shardExact = make([][]float64, n)
	for gid := range filter {
		s := gid % n
		shardFilter[s] = append(shardFilter[s], filter[gid])
		shardExact[s] = append(shardExact[s], exact[gid])
	}
	return
}

// TestSharedKNNMatchesUnion is the cross-shard identity theorem's
// test: for random instances, running the KNOP core per shard against
// one SharedKNN yields a global result set identical — distances,
// global ids, order — to the single-database bounded KNN over the
// union. Exercised sequentially (worst case for threshold reuse:
// later shards inherit a tight bound) and concurrently under -race.
func TestSharedKNNMatchesUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 40 + rng.Intn(120)
		filter, exact := randomInstance(rng, n)
		for _, shards := range []int{1, 2, 3, 4} {
			for _, k := range []int{1, 4, 9} {
				want, _, err := KNNBounded(NewScanRanking(filter), simulatedRefine(exact), k)
				if err != nil {
					t.Fatalf("KNNBounded: %v", err)
				}
				sf, se := partition(filter, exact, shards)
				for _, concurrent := range []bool{false, true} {
					g, err := NewSharedKNN(k)
					if err != nil {
						t.Fatalf("NewSharedKNN: %v", err)
					}
					run := func(s int) {
						toGlobal := func(local int) int { return local*shards + s }
						cfg := knnConfig{shared: g, toGlobal: toGlobal}
						_, _, _, err := knnBoundedCore(NewScanRanking(sf[s]), simulatedRefine(se[s]), k, cfg)
						if err != nil {
							t.Errorf("shard %d: %v", s, err)
						}
					}
					if concurrent {
						var wg sync.WaitGroup
						for s := 0; s < shards; s++ {
							wg.Add(1)
							go func(s int) { defer wg.Done(); run(s) }(s)
						}
						wg.Wait()
					} else {
						for s := 0; s < shards; s++ {
							run(s)
						}
					}
					got := g.Results()
					if len(got) != len(want) {
						t.Fatalf("trial %d shards=%d k=%d conc=%v: %d results, want %d",
							trial, shards, k, concurrent, len(got), len(want))
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("trial %d shards=%d k=%d conc=%v pos %d: got %v, want %v",
								trial, shards, k, concurrent, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

// TestSharedKNNParallelCoreMatchesUnion repeats the identity with the
// worker-pool KNOP core on each shard — the deployment shape of a
// ShardSet whose engines run Workers > 1.
func TestSharedKNNParallelCoreMatchesUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 15; trial++ {
		n := 60 + rng.Intn(120)
		filter, exact := randomInstance(rng, n)
		shards, k := 3, 5
		want, _, err := KNNBounded(NewScanRanking(filter), simulatedRefine(exact), k)
		if err != nil {
			t.Fatalf("KNNBounded: %v", err)
		}
		sf, se := partition(filter, exact, shards)
		g, err := NewSharedKNN(k)
		if err != nil {
			t.Fatalf("NewSharedKNN: %v", err)
		}
		var wg sync.WaitGroup
		for s := 0; s < shards; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				toGlobal := func(local int) int { return local*shards + s }
				cfg := knnConfig{shared: g, toGlobal: toGlobal}
				_, _, _, err := parallelKNNBoundedCore(NewScanRanking(sf[s]), simulatedRefine(se[s]), k, 4, cfg)
				if err != nil {
					t.Errorf("shard %d: %v", s, err)
				}
			}(s)
		}
		wg.Wait()
		got := g.Results()
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d results, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d pos %d: got %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestSharedKNNThresholdPrunesAcrossShards: once one shard has
// confirmed k tight neighbors, a second shard holding only far items
// must stop after its first pull instead of scanning its whole
// partition — the cross-shard threshold is doing real pruning work.
func TestSharedKNNThresholdPrunesAcrossShards(t *testing.T) {
	k := 3
	g, err := NewSharedKNN(k)
	if err != nil {
		t.Fatalf("NewSharedKNN: %v", err)
	}
	// Shard A: three items at distance ~1.
	for i := 0; i < k; i++ {
		g.Offer(i, 1.0+float64(i)*0.01)
	}
	if thr := g.Threshold(); thr != 1.02 {
		t.Fatalf("threshold = %v, want 1.02", thr)
	}
	// Shard B: 50 items whose filter lower bounds all exceed the
	// global threshold.
	nB := 50
	filter := make([]float64, nB)
	exact := make([]float64, nB)
	for i := range filter {
		filter[i] = 5 + float64(i)
		exact[i] = filter[i] + 1
	}
	cfg := knnConfig{shared: g}
	res, _, stats, err := knnBoundedCore(NewScanRanking(filter), simulatedRefine(exact), k, cfg)
	if err != nil {
		t.Fatalf("knnBoundedCore: %v", err)
	}
	if stats.Pulled != 1 {
		t.Fatalf("shard B pulled %d candidates, want 1 (break on shared threshold)", stats.Pulled)
	}
	if stats.Refinements != 0 {
		t.Fatalf("shard B refined %d candidates, want 0", stats.Refinements)
	}
	if len(res) != 0 {
		t.Fatalf("shard B confirmed %d local neighbors, want 0", len(res))
	}
}

// TestSharedKNNOfferIgnoresInf: deleted items surface as +Inf exact
// distances; offering them must not occupy top-k slots or publish a
// threshold.
func TestSharedKNNOfferIgnoresInf(t *testing.T) {
	g, err := NewSharedKNN(2)
	if err != nil {
		t.Fatalf("NewSharedKNN: %v", err)
	}
	g.Offer(0, math.Inf(1))
	g.Offer(1, math.Inf(1))
	if !math.IsInf(g.Threshold(), 1) {
		t.Fatalf("threshold = %v after only Inf offers, want +Inf", g.Threshold())
	}
	if n := len(g.Results()); n != 0 {
		t.Fatalf("results hold %d entries after Inf offers, want 0", n)
	}
	g.Offer(2, 1.5)
	g.Offer(3, 0.5)
	res := g.Results()
	if len(res) != 2 || res[0] != (Result{Index: 3, Dist: 0.5}) || res[1] != (Result{Index: 2, Dist: 1.5}) {
		t.Fatalf("results = %v", res)
	}
	if g.Threshold() != 1.5 {
		t.Fatalf("threshold = %v, want 1.5", g.Threshold())
	}
}

// TestSharedKNNOfferDedup: a hedged re-dispatch runs the same shard
// search twice, so the same (global id, dist) pair arrives from both
// attempts. A duplicate must not occupy a second top-k slot — that
// would publish a threshold tighter than the true global k-th
// distance and make other shards prune true neighbors.
func TestSharedKNNOfferDedup(t *testing.T) {
	g, err := NewSharedKNN(2)
	if err != nil {
		t.Fatalf("NewSharedKNN: %v", err)
	}
	g.Offer(7, 1.0)
	g.Offer(7, 1.0) // the hedge's identical confirmation
	if !math.IsInf(g.Threshold(), 1) {
		t.Fatalf("duplicate offers filled the set: threshold = %v, want +Inf with one of two slots taken", g.Threshold())
	}
	if res := g.Results(); len(res) != 1 || res[0] != (Result{Index: 7, Dist: 1.0}) {
		t.Fatalf("results after duplicate offers = %v, want one entry", res)
	}
	g.Offer(3, 2.0)
	if g.Threshold() != 2.0 {
		t.Fatalf("threshold = %v, want the true 2nd-best 2.0", g.Threshold())
	}
	// A tighter re-offer of a held id keeps one slot and adopts the
	// tighter distance; a looser one is ignored.
	g.Offer(3, 1.5)
	if res := g.Results(); len(res) != 2 || res[1] != (Result{Index: 3, Dist: 1.5}) {
		t.Fatalf("results after tighter re-offer = %v", res)
	}
	if g.Threshold() != 1.5 {
		t.Fatalf("threshold = %v after tighter re-offer, want 1.5", g.Threshold())
	}
	g.Offer(7, 5.0)
	if res := g.Results(); len(res) != 2 || res[0] != (Result{Index: 7, Dist: 1.0}) {
		t.Fatalf("results after looser re-offer = %v", res)
	}
}

// TestSharedKNNValidation pins the constructor's k check and the
// classic path's indifference to a nil shared set.
func TestSharedKNNValidation(t *testing.T) {
	if _, err := NewSharedKNN(0); err == nil {
		t.Fatal("NewSharedKNN(0) did not fail")
	}
	// tighten/offer with no shared set must be no-ops (classic path).
	cfg := knnConfig{}
	if thr := cfg.tighten(math.Inf(1)); !math.IsInf(thr, 1) {
		t.Fatalf("tighten without shared set = %v", thr)
	}
	cfg.offer(0, 1) // must not panic
}
