package search

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// RangeIDsStats reports the work of a RangeIDs query.
type RangeIDsStats struct {
	Pulled int
	// AcceptedByUpper counts results certified by the upper bound
	// alone — no exact EMD was computed for them.
	AcceptedByUpper int
	// Refinements counts exact computations (only for objects whose
	// interval straddles eps).
	Refinements int
	// RefinesAborted counts refinements the bounded solver abandoned
	// early on a certified lower bound above eps; WarmStartHits counts
	// refinements re-entered from a cached basis. Both are 0 when the
	// legacy unbounded refinement is in use.
	RefinesAborted int
	WarmStartHits  int
	// RefineRows and RefineCols accumulate the reduced problem shapes
	// over all refinements, as in QueryStats.
	RefineRows, RefineCols int64
	// Workers is the number of goroutines that served the refinement
	// stage (1 on the sequential path).
	Workers int
	// Cancelled reports the query stopped early on its cancel flag;
	// the returned ids are then a certified subset of the full answer.
	Cancelled bool
}

func (s *RangeIDsStats) observe(r Refinement) {
	s.Refinements++
	s.RefineRows += int64(r.Rows)
	s.RefineCols += int64(r.Cols)
	if r.WarmStart {
		s.WarmStartHits++
	}
	if r.Aborted {
		s.RefinesAborted++
	}
}

// RangeIDs answers a membership range query — *which* objects lie
// within eps — using a lower-bound ranking plus an upper-bound
// function. Objects with upper bound <= eps are accepted without any
// exact computation; objects with lower bound > eps are rejected
// wholesale (the ranking stops there); only objects whose envelope
// straddles eps are refined. For result sets where distances are not
// needed (counting, filtering, candidate generation) this cuts exact
// EMD work to the boundary cases only. The returned ids are exact —
// the same set an exhaustive scan would produce — in ascending order.
func RangeIDs(ranking Ranking, refine, upper func(index int) float64, eps float64) ([]int, *RangeIDsStats, error) {
	if refine == nil {
		return nil, nil, fmt.Errorf("search: nil refine")
	}
	return RangeIDsBounded(ranking, adaptRefine(refine), upper, eps, 1, nil)
}

// RangeIDsBounded is RangeIDs with a threshold-aware refinement and an
// optional worker pool: straddling candidates are refined with eps as
// the abort bound (an aborted solve certifies the object is out), by
// up to `workers` goroutines when workers > 1. The upper-bound
// function always runs on the calling goroutine — engine upper bounds
// draw from a per-goroutine pool and are not safe to share — so only
// the exact solves fan out. cancel, when non-nil, stops the query
// early: confirmed ids are returned with Cancelled=true (each id is
// individually certified, so the subset is sound). The id set is
// identical to RangeIDs' when the query runs to completion.
func RangeIDsBounded(ranking Ranking, refine BoundedRefine, upper func(index int) float64, eps float64, workers int, cancel *atomic.Bool) ([]int, *RangeIDsStats, error) {
	if eps < 0 {
		return nil, nil, fmt.Errorf("search: eps = %g, want >= 0", eps)
	}
	if upper == nil {
		return nil, nil, fmt.Errorf("search: nil upper bound")
	}
	if refine == nil {
		return nil, nil, fmt.Errorf("search: nil refine")
	}
	stats := &RangeIDsStats{Workers: 1}
	cancelled := func() bool { return cancel != nil && cancel.Load() }
	var ids []int

	if workers <= 1 {
		for {
			if cancelled() {
				stats.Cancelled = true
				break
			}
			c, ok := ranking.Next()
			if !ok {
				break
			}
			stats.Pulled++
			if c.Dist > eps {
				break // lower bound: every remaining object is out
			}
			if ub := upper(c.Index); ub <= eps {
				stats.AcceptedByUpper++
				ids = append(ids, c.Index)
				continue
			}
			r, rerr := callRefine(refine, c.Index, eps)
			if rerr != nil {
				return nil, nil, rerr
			}
			stats.observe(r)
			if r.Interrupted {
				stats.Cancelled = true
				break
			}
			if !r.Aborted && r.Dist <= eps {
				ids = append(ids, c.Index)
			}
		}
		sort.Ints(ids)
		return ids, stats, nil
	}

	stats.Workers = workers
	var (
		mu       sync.Mutex
		counters parallelCounters
		stopped  atomic.Bool
		faulted  fault
	)
	dispatch := make(chan Candidate, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range dispatch {
				if faulted.Load() {
					continue
				}
				if cancelled() {
					stopped.Store(true)
					continue
				}
				r, rerr := callRefine(refine, c.Index, eps)
				if rerr != nil {
					faulted.record(rerr)
					continue
				}
				counters.observe(r)
				if r.Interrupted {
					stopped.Store(true)
					continue
				}
				if !r.Aborted && r.Dist <= eps {
					mu.Lock()
					ids = append(ids, c.Index)
					mu.Unlock()
				}
			}
		}()
	}
	for {
		if faulted.Load() {
			break
		}
		if cancelled() {
			stopped.Store(true)
			break
		}
		c, ok := ranking.Next()
		if !ok {
			break
		}
		stats.Pulled++
		if c.Dist > eps {
			break
		}
		// The upper bound stays on the feeder goroutine; only the
		// boundary cases cross into the pool.
		if ub := upper(c.Index); ub <= eps {
			stats.AcceptedByUpper++
			mu.Lock()
			ids = append(ids, c.Index)
			mu.Unlock()
			continue
		}
		dispatch <- c
	}
	close(dispatch)
	wg.Wait()

	if err := faulted.Err(); err != nil {
		return nil, nil, err
	}
	stats.Refinements = int(atomic.LoadInt64(&counters.refined))
	stats.RefinesAborted = int(atomic.LoadInt64(&counters.aborted))
	stats.WarmStartHits = int(atomic.LoadInt64(&counters.warm))
	stats.RefineRows = atomic.LoadInt64(&counters.rows)
	stats.RefineCols = atomic.LoadInt64(&counters.cols)
	stats.Cancelled = stopped.Load()
	sort.Ints(ids)
	return ids, stats, nil
}
