package search

import (
	"fmt"
	"sort"
)

// RangeIDsStats reports the work of a RangeIDs query.
type RangeIDsStats struct {
	Pulled int
	// AcceptedByUpper counts results certified by the upper bound
	// alone — no exact EMD was computed for them.
	AcceptedByUpper int
	// Refinements counts exact computations (only for objects whose
	// interval straddles eps).
	Refinements int
}

// RangeIDs answers a membership range query — *which* objects lie
// within eps — using a lower-bound ranking plus an upper-bound
// function. Objects with upper bound <= eps are accepted without any
// exact computation; objects with lower bound > eps are rejected
// wholesale (the ranking stops there); only objects whose envelope
// straddles eps are refined. For result sets where distances are not
// needed (counting, filtering, candidate generation) this cuts exact
// EMD work to the boundary cases only. The returned ids are exact —
// the same set an exhaustive scan would produce — in ascending order.
func RangeIDs(ranking Ranking, refine, upper func(index int) float64, eps float64) ([]int, *RangeIDsStats, error) {
	if eps < 0 {
		return nil, nil, fmt.Errorf("search: eps = %g, want >= 0", eps)
	}
	if upper == nil {
		return nil, nil, fmt.Errorf("search: nil upper bound")
	}
	stats := &RangeIDsStats{}
	var ids []int
	for {
		c, ok := ranking.Next()
		if !ok {
			break
		}
		stats.Pulled++
		if c.Dist > eps {
			break // lower bound: every remaining object is out
		}
		if ub := upper(c.Index); ub <= eps {
			stats.AcceptedByUpper++
			ids = append(ids, c.Index)
			continue
		}
		stats.Refinements++
		if refine(c.Index) <= eps {
			ids = append(ids, c.Index)
		}
	}
	sort.Ints(ids)
	return ids, stats, nil
}
