package search

import (
	"math/rand"
	"sort"
	"testing"

	"emdsearch/internal/core"
	"emdsearch/internal/emd"
	"emdsearch/internal/lb"
)

func randomHistogram(rng *rand.Rand, d int) emd.Histogram {
	h := make(emd.Histogram, d)
	for i := range h {
		h[i] = rng.Float64()
		if rng.Intn(4) == 0 {
			h[i] = 0
		}
	}
	var sum float64
	for _, v := range h {
		sum += v
	}
	if sum == 0 {
		h[rng.Intn(d)] = 1
		sum = 1
	}
	for i := range h {
		h[i] /= sum
	}
	return h
}

func TestScanRankingOrdersAscending(t *testing.T) {
	dists := []float64{3, 1, 2, 1, 0}
	r := NewScanRanking(dists)
	var got []Candidate
	for {
		c, ok := r.Next()
		if !ok {
			break
		}
		got = append(got, c)
	}
	if len(got) != 5 {
		t.Fatalf("got %d candidates, want 5", len(got))
	}
	want := []Candidate{{4, 0}, {1, 1}, {3, 1}, {2, 2}, {0, 3}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("position %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSliceRanking(t *testing.T) {
	r := NewSliceRanking([]Candidate{{0, 1}, {1, 2}})
	if c, ok := r.Next(); !ok || c.Index != 0 {
		t.Fatalf("first = %v %v", c, ok)
	}
	if c, ok := r.Next(); !ok || c.Index != 1 {
		t.Fatalf("second = %v %v", c, ok)
	}
	if _, ok := r.Next(); ok {
		t.Fatal("exhausted ranking still yields")
	}
}

// TestChainedRankingMatchesFullSort: the chained ranking must emit all
// items in ascending second-filter order whenever f1 <= f2.
func TestChainedRankingMatchesFullSort(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 200
	f1 := make([]float64, n)
	f2 := make([]float64, n)
	for i := 0; i < n; i++ {
		f1[i] = rng.Float64() * 5
		f2[i] = f1[i] + rng.Float64()*2 // f2 dominates f1
	}
	cr := NewChainedRanking(NewScanRanking(f1), func(i int) float64 { return f2[i] })

	var emitted []Candidate
	for {
		c, ok := cr.Next()
		if !ok {
			break
		}
		emitted = append(emitted, c)
	}
	if len(emitted) != n {
		t.Fatalf("emitted %d, want %d", len(emitted), n)
	}
	for i := 1; i < n; i++ {
		if emitted[i].Dist < emitted[i-1].Dist {
			t.Fatalf("out of order at %d: %g after %g", i, emitted[i].Dist, emitted[i-1].Dist)
		}
	}
	// Every index exactly once.
	seen := make([]bool, n)
	for _, c := range emitted {
		if seen[c.Index] {
			t.Fatalf("index %d emitted twice", c.Index)
		}
		seen[c.Index] = true
	}
}

// TestChainedRankingIsLazy: pulling only the single best item must not
// evaluate the second filter on the whole database.
func TestChainedRankingIsLazy(t *testing.T) {
	const n = 1000
	f1 := make([]float64, n)
	for i := range f1 {
		f1[i] = float64(i) // well separated
	}
	cr := NewChainedRanking(NewScanRanking(f1), func(i int) float64 { return f1[i] + 0.5 })
	if _, ok := cr.Next(); !ok {
		t.Fatal("empty ranking")
	}
	if cr.Evaluations > 3 {
		t.Errorf("second filter evaluated %d times for one pull, want <= 3", cr.Evaluations)
	}
}

func TestChainedRankingEmptyBase(t *testing.T) {
	cr := NewChainedRanking(NewScanRanking(nil), func(i int) float64 { return 0 })
	if _, ok := cr.Next(); ok {
		t.Fatal("chained ranking over empty base yielded a candidate")
	}
}

func TestKNNValidation(t *testing.T) {
	r := NewScanRanking([]float64{1})
	if _, _, err := KNN(r, func(int) float64 { return 0 }, 0); err == nil {
		t.Error("accepted k = 0")
	}
	if _, _, err := Range(r, func(int) float64 { return 0 }, -1); err == nil {
		t.Error("accepted negative eps")
	}
	if _, _, err := LinearScanKNN(1, func(int) float64 { return 0 }, 0); err == nil {
		t.Error("linear scan accepted k = 0")
	}
}

func TestKNNFewerItemsThanK(t *testing.T) {
	dists := []float64{0.5, 0.1}
	exact := []float64{0.7, 0.3}
	res, stats, err := KNN(NewScanRanking(dists), func(i int) float64 { return exact[i] }, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d results, want 2", len(res))
	}
	if res[0].Index != 1 || res[1].Index != 0 {
		t.Fatalf("order wrong: %v", res)
	}
	if stats.Refinements != 2 {
		t.Errorf("refinements = %d, want 2", stats.Refinements)
	}
}

// TestKNNMatchesLinearScanWithRealEMD is the completeness test at the
// heart of the paper: multistep KNOP with a reduced-EMD filter returns
// exactly the same neighbors as an exhaustive scan.
func TestKNNMatchesLinearScanWithRealEMD(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const d, dr, n = 12, 4, 150
	cost := emd.CostMatrix(emd.LinearCost(d))
	dist, err := emd.NewDist(cost)
	if err != nil {
		t.Fatal(err)
	}
	red, err := core.Adjacent(d, dr)
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := core.NewReducedEMD(cost, red, red)
	if err != nil {
		t.Fatal(err)
	}

	data := make([]emd.Histogram, n)
	reducedData := make([]emd.Histogram, n)
	for i := range data {
		data[i] = randomHistogram(rng, d)
		reducedData[i] = red.Apply(data[i])
	}

	for trial := 0; trial < 5; trial++ {
		q := randomHistogram(rng, d)
		qr := red.Apply(q)
		refine := func(i int) float64 { return dist.Distance(q, data[i]) }

		filterDists := make([]float64, n)
		for i := 0; i < n; i++ {
			filterDists[i] = reduced.DistanceReduced(qr, reducedData[i])
		}
		for _, k := range []int{1, 5, 20} {
			got, stats, err := KNN(NewScanRanking(filterDists), refine, k)
			if err != nil {
				t.Fatal(err)
			}
			want, _, err := LinearScanKNN(n, refine, k)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("k=%d: got %d results, want %d", k, len(got), len(want))
			}
			for i := range want {
				if got[i].Index != want[i].Index || got[i].Dist != want[i].Dist {
					t.Fatalf("k=%d result %d: got %v, want %v", k, i, got[i], want[i])
				}
			}
			if stats.Refinements > n {
				t.Errorf("k=%d: %d refinements exceed database size %d", k, stats.Refinements, n)
			}
			if stats.Refinements < k {
				t.Errorf("k=%d: only %d refinements", k, stats.Refinements)
			}
		}
	}
}

func TestRangeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const d, n = 8, 120
	cost := emd.CostMatrix(emd.LinearCost(d))
	dist, err := emd.NewDist(cost)
	if err != nil {
		t.Fatal(err)
	}
	red, err := core.Adjacent(d, 3)
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := core.NewReducedEMD(cost, red, red)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]emd.Histogram, n)
	for i := range data {
		data[i] = randomHistogram(rng, d)
	}
	q := randomHistogram(rng, d)
	refine := func(i int) float64 { return dist.Distance(q, data[i]) }
	filterDists := make([]float64, n)
	for i := range filterDists {
		filterDists[i] = reduced.Distance(q, data[i])
	}

	for _, eps := range []float64{0, 0.3, 0.8, 2.0} {
		got, _, err := Range(NewScanRanking(filterDists), refine, eps)
		if err != nil {
			t.Fatal(err)
		}
		var want []Result
		for i := 0; i < n; i++ {
			if d := refine(i); d <= eps {
				want = append(want, Result{Index: i, Dist: d})
			}
		}
		sort.Slice(want, func(i, j int) bool {
			if want[i].Dist != want[j].Dist {
				return want[i].Dist < want[j].Dist
			}
			return want[i].Index < want[j].Index
		})
		if len(got) != len(want) {
			t.Fatalf("eps=%g: got %d results, want %d", eps, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("eps=%g result %d: got %v, want %v", eps, i, got[i], want[i])
			}
		}
	}
}

// TestSearcherChainedPipeline wires the full Figure 10 setup — Red-IM
// then Red-EMD then exact EMD — and checks exactness plus the expected
// monotone decrease of evaluations along the chain.
func TestSearcherChainedPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const d, dr, n, k = 16, 4, 200, 10
	cost := emd.CostMatrix(emd.LinearCost(d))
	dist, err := emd.NewDist(cost)
	if err != nil {
		t.Fatal(err)
	}
	red, err := core.Adjacent(d, dr)
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := core.NewReducedEMD(cost, red, red)
	if err != nil {
		t.Fatal(err)
	}
	im, err := lb.NewIM(reduced.Cost())
	if err != nil {
		t.Fatal(err)
	}

	data := make([]emd.Histogram, n)
	reducedData := make([]emd.Histogram, n)
	for i := range data {
		data[i] = randomHistogram(rng, d)
		reducedData[i] = red.Apply(data[i])
	}

	searcher := &Searcher{
		N: n,
		Stages: []FilterStage{
			{
				Name:         "Red-IM",
				PrepareQuery: red.Apply,
				Distance:     func(qr emd.Histogram, i int) float64 { return im.Distance(qr, reducedData[i]) },
			},
			{
				Name:         "Red-EMD",
				PrepareQuery: red.Apply,
				Distance:     func(qr emd.Histogram, i int) float64 { return reduced.DistanceReduced(qr, reducedData[i]) },
			},
		},
		Refine: func(q emd.Histogram, i int) float64 { return dist.Distance(q, data[i]) },
	}
	scan := &Searcher{
		N:      n,
		Refine: searcher.Refine,
	}

	var totalRefine, totalStage2 int
	for trial := 0; trial < 5; trial++ {
		q := randomHistogram(rng, d)
		got, stats, err := searcher.KNN(q, k)
		if err != nil {
			t.Fatal(err)
		}
		want, scanStats, err := scan.KNN(q, k)
		if err != nil {
			t.Fatal(err)
		}
		if scanStats.Refinements != n {
			t.Fatalf("scan refined %d of %d", scanStats.Refinements, n)
		}
		if len(got) != len(want) {
			t.Fatalf("got %d results, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i].Index != want[i].Index || got[i].Dist != want[i].Dist {
				t.Fatalf("result %d: got %v, want %v", i, got[i], want[i])
			}
		}
		if len(stats.StageEvaluations) != 2 {
			t.Fatalf("stage evaluations: %v", stats.StageEvaluations)
		}
		if stats.StageEvaluations[0] != n {
			t.Errorf("first stage evaluated %d, want %d", stats.StageEvaluations[0], n)
		}
		if stats.StageEvaluations[1] > n {
			t.Errorf("second stage evaluated %d > n", stats.StageEvaluations[1])
		}
		if stats.Refinements > stats.StageEvaluations[1] {
			t.Errorf("refinements %d exceed second-stage evaluations %d",
				stats.Refinements, stats.StageEvaluations[1])
		}
		totalRefine += stats.Refinements
		totalStage2 += stats.StageEvaluations[1]
	}
	// The chain must actually prune: across queries, the pipeline
	// refines far fewer than everything.
	if totalRefine >= 5*n {
		t.Errorf("pipeline refined everything (%d refinements over 5 queries)", totalRefine)
	}
	if totalStage2 >= 5*n {
		t.Errorf("Red-EMD stage evaluated everything (%d over 5 queries)", totalStage2)
	}
}

func TestSearcherRangeMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const d, n = 10, 100
	cost := emd.CostMatrix(emd.LinearCost(d))
	dist, err := emd.NewDist(cost)
	if err != nil {
		t.Fatal(err)
	}
	red, err := core.Adjacent(d, 4)
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := core.NewReducedEMD(cost, red, red)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]emd.Histogram, n)
	reducedData := make([]emd.Histogram, n)
	for i := range data {
		data[i] = randomHistogram(rng, d)
		reducedData[i] = red.Apply(data[i])
	}
	s := &Searcher{
		N: n,
		Stages: []FilterStage{{
			Name:         "Red-EMD",
			PrepareQuery: red.Apply,
			Distance:     func(qr emd.Histogram, i int) float64 { return reduced.DistanceReduced(qr, reducedData[i]) },
		}},
		Refine: func(q emd.Histogram, i int) float64 { return dist.Distance(q, data[i]) },
	}
	q := randomHistogram(rng, d)
	got, _, err := s.Range(q, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	var want []Result
	for i := 0; i < n; i++ {
		if dd := dist.Distance(q, data[i]); dd <= 0.75 {
			want = append(want, Result{Index: i, Dist: dd})
		}
	}
	sort.Slice(want, func(i, j int) bool { return want[i].Dist < want[j].Dist })
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Index != want[i].Index {
			t.Fatalf("result %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSearcherNoRefine(t *testing.T) {
	s := &Searcher{N: 3}
	if _, _, err := s.KNN(emd.Histogram{1}, 1); err == nil {
		t.Error("KNN without Refine succeeded")
	}
	if _, _, err := s.Range(emd.Histogram{1}, 1); err == nil {
		t.Error("Range without Refine succeeded")
	}
}

func TestKNNTieHandling(t *testing.T) {
	// Three items at the same exact distance; k=2 must pick the two
	// smallest indices deterministically.
	exact := []float64{0.5, 0.5, 0.5, 0.9}
	filter := []float64{0.1, 0.1, 0.1, 0.1}
	got, _, err := KNN(NewScanRanking(filter), func(i int) float64 { return exact[i] }, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Index != 0 || got[1].Index != 1 {
		t.Fatalf("tie handling: got %v, want indices 0, 1", got)
	}
}

// TestChainedRankingNonDominatingFilters: the max-combination makes
// the chain correct even when the second filter does NOT dominate the
// first item-wise (e.g. a centroid bound after Red-IM).
func TestChainedRankingNonDominatingFilters(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	const n = 300
	exact := make([]float64, n)
	f1 := make([]float64, n)
	f2 := make([]float64, n)
	for i := 0; i < n; i++ {
		exact[i] = 1 + rng.Float64()*9
		// Both are lower bounds of exact, neither dominates the other.
		f1[i] = exact[i] * (0.2 + 0.6*rng.Float64())
		f2[i] = exact[i] * (0.2 + 0.6*rng.Float64())
	}
	cr := NewChainedRanking(NewScanRanking(f1), func(i int) float64 { return f2[i] })
	// Emitted distances must be valid lower bounds of exact, ascending,
	// covering every index once.
	prev := -1.0
	seen := make([]bool, n)
	for {
		c, ok := cr.Next()
		if !ok {
			break
		}
		if c.Dist < prev-1e-12 {
			t.Fatalf("out of order: %g after %g", c.Dist, prev)
		}
		prev = c.Dist
		if c.Dist > exact[c.Index]+1e-12 {
			t.Fatalf("emitted dist %g exceeds exact %g", c.Dist, exact[c.Index])
		}
		if seen[c.Index] {
			t.Fatalf("index %d emitted twice", c.Index)
		}
		seen[c.Index] = true
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("index %d never emitted", i)
		}
	}
	// And KNOP over the chain yields the exact kNN.
	got, _, err := KNN(NewChainedRanking(NewScanRanking(f1), func(i int) float64 { return f2[i] }),
		func(i int) float64 { return exact[i] }, 7)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := LinearScanKNN(n, func(i int) float64 { return exact[i] }, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("result %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}
