package search

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// atomicDuration accumulates wall time from multiple goroutines.
type atomicDuration struct{ ns int64 }

func (a *atomicDuration) Add(d time.Duration) { atomic.AddInt64(&a.ns, int64(d)) }
func (a *atomicDuration) Load() time.Duration { return time.Duration(atomic.LoadInt64(&a.ns)) }

// atomicThreshold is a monotonically non-increasing float64 shared
// between the candidate feeder and the refinement workers: the current
// k-th neighbor distance (+Inf until k neighbors are known). Because
// it only ever decreases, a reader observing c.Dist > threshold may
// safely discard the candidate — the bound can only tighten further.
type atomicThreshold struct{ bits uint64 }

func newAtomicThreshold() *atomicThreshold {
	t := &atomicThreshold{}
	t.Store(math.Inf(1))
	return t
}

func (t *atomicThreshold) Store(v float64) { atomic.StoreUint64(&t.bits, math.Float64bits(v)) }
func (t *atomicThreshold) Load() float64   { return math.Float64frombits(atomic.LoadUint64(&t.bits)) }

// neighborSet is the mutex-guarded k-best result set shared by the
// refinement workers. Insertion keeps the (Dist, Index)-sorted order
// of the sequential KNOP algorithm, so the final contents are
// independent of the order in which workers complete.
type neighborSet struct {
	mu        sync.Mutex
	k         int
	results   []Result
	threshold *atomicThreshold
}

func newNeighborSet(k int, threshold *atomicThreshold) *neighborSet {
	return &neighborSet{k: k, results: make([]Result, 0, k+1), threshold: threshold}
}

// insert adds r, trims to k and publishes the new k-th distance.
func (ns *neighborSet) insert(r Result) {
	ns.mu.Lock()
	pos := sort.Search(len(ns.results), func(i int) bool {
		if ns.results[i].Dist != r.Dist {
			return ns.results[i].Dist > r.Dist
		}
		return ns.results[i].Index > r.Index
	})
	ns.results = append(ns.results, Result{})
	copy(ns.results[pos+1:], ns.results[pos:])
	ns.results[pos] = r
	if len(ns.results) > ns.k {
		ns.results = ns.results[:ns.k]
	}
	if len(ns.results) == ns.k {
		ns.threshold.Store(ns.results[ns.k-1].Dist)
	}
	ns.mu.Unlock()
}

// ParallelKNN is the concurrent form of the KNOP k-NN algorithm: it
// pulls candidates from the lower-bounding filter ranking in ascending
// order and refines them with up to `workers` goroutines. A shared
// atomic threshold carries the current k-th neighbor distance; the
// feeder stops — and in-flight workers skip — as soon as a candidate's
// filter distance exceeds it. Dispatch is bounded (a small channel
// buffer), so the feeder stays only one chunk ahead of the workers and
// lazily chained filter stages are not evaluated further than the
// sequential algorithm would, beyond that bounded look-ahead.
//
// The result set is exactly that of the sequential KNN: any candidate
// left unrefined had a filter distance above the threshold at some
// point, the threshold never increases, and the filter lower-bounds
// the exact distance — so no unrefined item can belong to the answer.
// Work counters may differ from the sequential path: candidates in
// flight when the threshold tightens are refined speculatively
// (counted in Refinements) or skipped (RefinementsSkipped).
func ParallelKNN(ranking Ranking, refine func(index int) float64, k, workers int) ([]Result, *QueryStats, error) {
	if k < 1 {
		return nil, nil, fmt.Errorf("search: k = %d, want >= 1", k)
	}
	if workers <= 1 {
		return KNN(ranking, refine, k)
	}
	threshold := newAtomicThreshold()
	neighbors := newNeighborSet(k, threshold)
	var refined, skipped int64

	// The buffer is the dispatch chunk: the feeder can run at most
	// workers + cap(dispatch) candidates ahead of the slowest refiner.
	dispatch := make(chan Candidate, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range dispatch {
				if c.Dist > threshold.Load() {
					atomic.AddInt64(&skipped, 1)
					continue
				}
				d := refine(c.Index)
				atomic.AddInt64(&refined, 1)
				neighbors.insert(Result{Index: c.Index, Dist: d})
			}
		}()
	}

	stats := &QueryStats{Workers: workers}
	for {
		c, ok := ranking.Next()
		if !ok {
			break
		}
		stats.Pulled++
		if c.Dist > threshold.Load() {
			// Lower-bounding filter in ascending order: every
			// remaining item is at least this far away, and the
			// threshold only tightens.
			break
		}
		dispatch <- c
	}
	close(dispatch)
	wg.Wait()

	stats.Refinements = int(refined)
	stats.RefinementsSkipped = int(skipped)
	return neighbors.results, stats, nil
}

// ParallelRange is the concurrent form of the range query: candidates
// whose filter distance is within eps are refined by up to `workers`
// goroutines; items with exact distance <= eps are collected and
// sorted by (distance, index) as in the sequential algorithm. The
// result is identical to Range's.
func ParallelRange(ranking Ranking, refine func(index int) float64, eps float64, workers int) ([]Result, *QueryStats, error) {
	if eps < 0 {
		return nil, nil, fmt.Errorf("search: eps = %g, want >= 0", eps)
	}
	if workers <= 1 {
		return Range(ranking, refine, eps)
	}
	var (
		mu      sync.Mutex
		results []Result
		refined int64
	)
	dispatch := make(chan Candidate, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range dispatch {
				d := refine(c.Index)
				atomic.AddInt64(&refined, 1)
				if d <= eps {
					mu.Lock()
					results = append(results, Result{Index: c.Index, Dist: d})
					mu.Unlock()
				}
			}
		}()
	}

	stats := &QueryStats{Workers: workers}
	for {
		c, ok := ranking.Next()
		if !ok {
			break
		}
		stats.Pulled++
		if c.Dist > eps {
			break
		}
		dispatch <- c
	}
	close(dispatch)
	wg.Wait()

	stats.Refinements = int(refined)
	sort.Slice(results, func(i, j int) bool {
		if results[i].Dist != results[j].Dist {
			return results[i].Dist < results[j].Dist
		}
		return results[i].Index < results[j].Index
	})
	return results, stats, nil
}
