package search

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// atomicDuration accumulates wall time from multiple goroutines.
type atomicDuration struct{ ns int64 }

func (a *atomicDuration) Add(d time.Duration) { atomic.AddInt64(&a.ns, int64(d)) }
func (a *atomicDuration) Load() time.Duration { return time.Duration(atomic.LoadInt64(&a.ns)) }

// atomicThreshold is a monotonically non-increasing float64 shared
// between the candidate feeder and the refinement workers: the current
// k-th neighbor distance (+Inf until k neighbors are known). Because
// it only ever decreases, a reader observing c.Dist > threshold may
// safely discard the candidate — the bound can only tighten further.
type atomicThreshold struct{ bits uint64 }

func newAtomicThreshold() *atomicThreshold {
	t := &atomicThreshold{}
	t.Store(math.Inf(1))
	return t
}

func (t *atomicThreshold) Store(v float64) { atomic.StoreUint64(&t.bits, math.Float64bits(v)) }
func (t *atomicThreshold) Load() float64   { return math.Float64frombits(atomic.LoadUint64(&t.bits)) }

// neighborSet is the mutex-guarded k-best result set shared by the
// refinement workers. Insertion keeps the (Dist, Index)-sorted order
// of the sequential KNOP algorithm, so the final contents are
// independent of the order in which workers complete.
type neighborSet struct {
	mu        sync.Mutex
	k         int
	results   []Result
	threshold *atomicThreshold
}

func newNeighborSet(k int, threshold *atomicThreshold) *neighborSet {
	return &neighborSet{k: k, results: make([]Result, 0, k+1), threshold: threshold}
}

// insert adds r, trims to k and publishes the new k-th distance.
func (ns *neighborSet) insert(r Result) {
	ns.mu.Lock()
	pos := sort.Search(len(ns.results), func(i int) bool {
		if ns.results[i].Dist != r.Dist {
			return ns.results[i].Dist > r.Dist
		}
		return ns.results[i].Index > r.Index
	})
	ns.results = append(ns.results, Result{})
	copy(ns.results[pos+1:], ns.results[pos:])
	ns.results[pos] = r
	if len(ns.results) > ns.k {
		ns.results = ns.results[:ns.k]
	}
	if len(ns.results) == ns.k {
		ns.threshold.Store(ns.results[ns.k-1].Dist)
	}
	ns.mu.Unlock()
}

// ParallelKNN is the concurrent form of the KNOP k-NN algorithm: it
// pulls candidates from the lower-bounding filter ranking in ascending
// order and refines them with up to `workers` goroutines. A shared
// atomic threshold carries the current k-th neighbor distance; the
// feeder stops — and in-flight workers skip — as soon as a candidate's
// filter distance exceeds it. Dispatch is bounded (a small channel
// buffer), so the feeder stays only one chunk ahead of the workers and
// lazily chained filter stages are not evaluated further than the
// sequential algorithm would, beyond that bounded look-ahead.
//
// The result set is exactly that of the sequential KNN: any candidate
// left unrefined had a filter distance above the threshold at some
// point, the threshold never increases, and the filter lower-bounds
// the exact distance — so no unrefined item can belong to the answer.
// Work counters may differ from the sequential path: candidates in
// flight when the threshold tightens are refined speculatively
// (counted in Refinements) or skipped (RefinementsSkipped).
func ParallelKNN(ranking Ranking, refine func(index int) float64, k, workers int) ([]Result, *QueryStats, error) {
	return ParallelKNNBounded(ranking, adaptRefine(refine), k, workers)
}

// parallelCounters accumulates per-refinement outcomes from multiple
// workers without locking; flush copies the totals into stats.
type parallelCounters struct {
	refined, skipped, aborted, warm, rows, cols int64
}

func (pc *parallelCounters) observe(r Refinement) {
	atomic.AddInt64(&pc.refined, 1)
	atomic.AddInt64(&pc.rows, int64(r.Rows))
	atomic.AddInt64(&pc.cols, int64(r.Cols))
	if r.WarmStart {
		atomic.AddInt64(&pc.warm, 1)
	}
	if r.Aborted {
		atomic.AddInt64(&pc.aborted, 1)
	}
}

func (pc *parallelCounters) flush(stats *QueryStats) {
	stats.Refinements = int(atomic.LoadInt64(&pc.refined))
	stats.RefinementsSkipped = int(atomic.LoadInt64(&pc.skipped))
	stats.RefinesAborted = int(atomic.LoadInt64(&pc.aborted))
	stats.WarmStartHits = int(atomic.LoadInt64(&pc.warm))
	stats.RefineRows = atomic.LoadInt64(&pc.rows)
	stats.RefineCols = atomic.LoadInt64(&pc.cols)
}

// ParallelKNNBounded is ParallelKNN with a threshold-aware refinement.
// Each worker reads the shared threshold once per candidate and passes
// it to refine as the abort bound. Because the threshold only ever
// tightens, a certified bound above the threshold-at-call-time also
// exceeds the final k-th distance, so discarding aborted candidates
// leaves the result set exactly equal to the sequential KNN's.
func ParallelKNNBounded(ranking Ranking, refine BoundedRefine, k, workers int) ([]Result, *QueryStats, error) {
	res, _, stats, err := parallelKNNBoundedCore(ranking, refine, k, workers, knnConfig{})
	return res, stats, err
}

// pendingSet collects unresolved candidates from multiple workers when
// a query is cancelled mid-flight.
type pendingSet struct {
	mu   sync.Mutex
	list []PendingCandidate
}

func (ps *pendingSet) add(p PendingCandidate) {
	ps.mu.Lock()
	ps.list = append(ps.list, p)
	ps.mu.Unlock()
}

// parallelKNNBoundedCore is the worker-pool KNOP core shared by
// ParallelKNNBounded and the context-aware searcher entry points. On
// cancellation the feeder stops pulling and the workers record each
// remaining dispatched candidate as pending instead of refining it;
// candidates whose solve was interrupted mid-pivot join the pending
// set with the solver's certified lower bound.
func parallelKNNBoundedCore(ranking Ranking, refine BoundedRefine, k, workers int, cfg knnConfig) ([]Result, []PendingCandidate, *QueryStats, error) {
	if k < 1 {
		return nil, nil, nil, fmt.Errorf("search: k = %d, want >= 1", k)
	}
	if workers <= 1 {
		return knnBoundedCore(ranking, refine, k, cfg)
	}
	threshold := newAtomicThreshold()
	neighbors := newNeighborSet(k, threshold)
	var counters parallelCounters
	var pending pendingSet
	var cancelled atomic.Bool
	var faulted fault

	// The buffer is the dispatch chunk: the feeder can run at most
	// workers + cap(dispatch) candidates ahead of the slowest refiner.
	dispatch := make(chan Candidate, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range dispatch {
				if faulted.Load() {
					// A sibling worker's solve panicked: the query is
					// failing with its error; just drain the channel.
					continue
				}
				if cfg.cancelled() {
					cancelled.Store(true)
					pending.add(PendingCandidate{Index: c.Index, Lower: c.Dist})
					continue
				}
				ab := cfg.tighten(threshold.Load())
				if c.Dist > ab {
					atomic.AddInt64(&counters.skipped, 1)
					continue
				}
				r, rerr := callRefine(refine, c.Index, ab)
				if rerr != nil {
					faulted.record(rerr)
					continue
				}
				counters.observe(r)
				if r.Interrupted {
					cancelled.Store(true)
					pending.add(PendingCandidate{Index: c.Index, Lower: math.Max(c.Dist, r.Dist)})
					continue
				}
				if r.Aborted {
					continue
				}
				cfg.offer(c.Index, r.Dist)
				neighbors.insert(Result{Index: c.Index, Dist: r.Dist})
			}
		}()
	}

	stats := &QueryStats{Workers: workers}
	for {
		if faulted.Load() {
			break
		}
		if cfg.cancelled() {
			cancelled.Store(true)
			break
		}
		c, ok := ranking.Next()
		if !ok {
			break
		}
		stats.Pulled++
		if c.Dist > cfg.tighten(threshold.Load()) {
			// Lower-bounding filter in ascending order: every
			// remaining item is at least this far away, and the
			// threshold only tightens.
			break
		}
		if cfg.pred != nil && !cfg.pred(c.Index) {
			continue
		}
		dispatch <- c
	}
	close(dispatch)
	wg.Wait()

	if err := faulted.Err(); err != nil {
		// A refinement panicked: the worker pool drained and exited
		// cleanly, the query fails with the captured panic as its
		// error, and no other query sharing the snapshot is affected.
		return nil, nil, nil, err
	}
	counters.flush(stats)
	stats.Cancelled = cancelled.Load()
	return neighbors.results, pending.list, stats, nil
}

// ParallelRange is the concurrent form of the range query: candidates
// whose filter distance is within eps are refined by up to `workers`
// goroutines; items with exact distance <= eps are collected and
// sorted by (distance, index) as in the sequential algorithm. The
// result is identical to Range's.
func ParallelRange(ranking Ranking, refine func(index int) float64, eps float64, workers int) ([]Result, *QueryStats, error) {
	return ParallelRangeBounded(ranking, adaptRefine(refine), eps, workers)
}

// ParallelRangeBounded is ParallelRange with a threshold-aware
// refinement; eps is every candidate's abort bound, as in RangeBounded,
// so results are identical to the sequential Range's.
func ParallelRangeBounded(ranking Ranking, refine BoundedRefine, eps float64, workers int) ([]Result, *QueryStats, error) {
	return parallelRangeBoundedCore(ranking, refine, eps, workers, knnConfig{})
}

// parallelRangeBoundedCore is the worker-pool range core. A cancelled
// query returns the (individually certified) results confirmed so far.
func parallelRangeBoundedCore(ranking Ranking, refine BoundedRefine, eps float64, workers int, cfg knnConfig) ([]Result, *QueryStats, error) {
	if eps < 0 {
		return nil, nil, fmt.Errorf("search: eps = %g, want >= 0", eps)
	}
	if workers <= 1 {
		return rangeBoundedCore(ranking, refine, eps, cfg)
	}
	var (
		mu        sync.Mutex
		results   []Result
		counters  parallelCounters
		cancelled atomic.Bool
		faulted   fault
	)
	dispatch := make(chan Candidate, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range dispatch {
				if faulted.Load() {
					continue
				}
				if cfg.cancelled() {
					cancelled.Store(true)
					continue
				}
				r, rerr := callRefine(refine, c.Index, eps)
				if rerr != nil {
					faulted.record(rerr)
					continue
				}
				counters.observe(r)
				if r.Interrupted {
					cancelled.Store(true)
					continue
				}
				if !r.Aborted && r.Dist <= eps {
					mu.Lock()
					results = append(results, Result{Index: c.Index, Dist: r.Dist})
					mu.Unlock()
				}
			}
		}()
	}

	stats := &QueryStats{Workers: workers}
	for {
		if faulted.Load() {
			break
		}
		if cfg.cancelled() {
			cancelled.Store(true)
			break
		}
		c, ok := ranking.Next()
		if !ok {
			break
		}
		stats.Pulled++
		if c.Dist > eps {
			break
		}
		if cfg.pred != nil && !cfg.pred(c.Index) {
			continue
		}
		dispatch <- c
	}
	close(dispatch)
	wg.Wait()

	if err := faulted.Err(); err != nil {
		return nil, nil, err
	}
	counters.flush(stats)
	stats.Cancelled = cancelled.Load()
	sort.Slice(results, func(i, j int) bool {
		if results[i].Dist != results[j].Dist {
			return results[i].Dist < results[j].Dist
		}
		return results[i].Index < results[j].Index
	})
	return results, stats, nil
}
