// Package db provides the in-memory histogram database used by the
// search layer: original feature vectors plus precomputed reduced
// representations for any number of registered reductions, with binary
// persistence. Precomputing the reduced database vectors once is what
// makes the reduced-EMD filters cheap at query time (the paper's
// Figure 10 setup applies R2 to the database offline and only R1 to the
// query online).
package db

import (
	"encoding/gob"
	"fmt"
	"io"

	"emdsearch/internal/core"
	"emdsearch/internal/emd"
	"emdsearch/internal/persist"
)

// Item is one database object: a feature histogram plus an optional
// application label (the synthetic generators store the class here).
type Item struct {
	ID     int
	Label  string
	Vector emd.Histogram
}

// Database stores items of one fixed dimensionality along with reduced
// representations per registered reduction.
type Database struct {
	dim     int
	items   []Item
	reduced map[string][]emd.Histogram
	reds    map[string]*core.Reduction
}

// New creates an empty database for dim-dimensional histograms.
func New(dim int) (*Database, error) {
	if dim < 1 {
		return nil, fmt.Errorf("db: dimensionality %d, want >= 1", dim)
	}
	return &Database{
		dim:     dim,
		reduced: make(map[string][]emd.Histogram),
		reds:    make(map[string]*core.Reduction),
	}, nil
}

// Check validates a histogram against the database's dimensionality
// and the EMD operand requirements without inserting it. It is the
// exact admission test Add applies, exposed so that a caller can
// verify an item before committing it to a write-ahead log.
func (d *Database) Check(h emd.Histogram) error {
	if len(h) != d.dim {
		return fmt.Errorf("db: histogram has %d dimensions, database stores %d", len(h), d.dim)
	}
	return emd.Validate(h)
}

// Add validates and appends a histogram, returning its index. Adding
// invalidates no existing reduced vectors: the new item is reduced
// under every registered reduction immediately.
func (d *Database) Add(label string, h emd.Histogram) (int, error) {
	if err := d.Check(h); err != nil {
		return 0, err
	}
	id := len(d.items)
	d.items = append(d.items, Item{ID: id, Label: label, Vector: h})
	for name, r := range d.reds {
		d.reduced[name] = append(d.reduced[name], r.Apply(h))
	}
	return id, nil
}

// Len returns the number of stored items.
func (d *Database) Len() int { return len(d.items) }

// Dim returns the histogram dimensionality.
func (d *Database) Dim() int { return d.dim }

// Item returns the i-th item.
func (d *Database) Item(i int) Item { return d.items[i] }

// Vector returns the i-th original histogram.
func (d *Database) Vector(i int) emd.Histogram { return d.items[i].Vector }

// Vectors returns all original histograms (shared, not copied).
func (d *Database) Vectors() []emd.Histogram {
	out := make([]emd.Histogram, len(d.items))
	for i := range d.items {
		out[i] = d.items[i].Vector
	}
	return out
}

// Precompute registers reduction r under the given name and stores the
// reduced representation of every current and future item.
func (d *Database) Precompute(name string, r *core.Reduction) error {
	if r.OriginalDims() != d.dim {
		return fmt.Errorf("db: reduction expects %d dimensions, database stores %d", r.OriginalDims(), d.dim)
	}
	if _, exists := d.reds[name]; exists {
		return fmt.Errorf("db: reduction %q already registered", name)
	}
	vecs := make([]emd.Histogram, len(d.items))
	for i := range d.items {
		vecs[i] = r.Apply(d.items[i].Vector)
	}
	d.reds[name] = r.Clone()
	d.reduced[name] = vecs
	return nil
}

// Reduced returns the precomputed reduced vectors registered under
// name.
func (d *Database) Reduced(name string) ([]emd.Histogram, bool) {
	v, ok := d.reduced[name]
	return v, ok
}

// Reduction returns the reduction registered under name.
func (d *Database) Reduction(name string) (*core.Reduction, bool) {
	r, ok := d.reds[name]
	return r, ok
}

// Reductions returns the registered reductions by name. The map is a
// copy; the *core.Reduction values are the stored ones and must be
// treated as read-only.
func (d *Database) Reductions() map[string]*core.Reduction {
	out := make(map[string]*core.Reduction, len(d.reds))
	for name, r := range d.reds {
		out[name] = r
	}
	return out
}

// snapshot is the gob wire format.
type snapshot struct {
	Dim        int
	Items      []Item
	Reductions map[string]snapshotReduction
}

type snapshotReduction struct {
	Assign  []int
	Reduced int
}

// Save writes the database (items and registered reductions; reduced
// vectors are recomputed on load) to w.
func (d *Database) Save(w io.Writer) error {
	snap := snapshot{
		Dim:        d.dim,
		Items:      d.items,
		Reductions: make(map[string]snapshotReduction, len(d.reds)),
	}
	for name, r := range d.reds {
		snap.Reductions[name] = snapshotReduction{Assign: r.Assignment(), Reduced: r.ReducedDims()}
	}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("db: save: %w", err)
	}
	return nil
}

// Load reads a database written by Save. Undecodable bytes and decoded
// data that fails validation (dimensionality, histogram mass, reduction
// shape) are both reported as persist.ErrCorrupt: a tampered or
// bit-flipped file must never surface as a raw gob error, and — more
// importantly — never load silently-invalid histograms into query paths
// that assume validated data.
func Load(r io.Reader) (*Database, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("%w: db: load: %v", persist.ErrCorrupt, err)
	}
	d, err := New(snap.Dim)
	if err != nil {
		return nil, fmt.Errorf("%w: db: load: %v", persist.ErrCorrupt, err)
	}
	for _, item := range snap.Items {
		if _, err := d.Add(item.Label, item.Vector); err != nil {
			return nil, fmt.Errorf("%w: db: load item %d: %v", persist.ErrCorrupt, item.ID, err)
		}
	}
	for name, sr := range snap.Reductions {
		red, err := core.NewReduction(sr.Assign, sr.Reduced)
		if err != nil {
			return nil, fmt.Errorf("%w: db: load reduction %q: %v", persist.ErrCorrupt, name, err)
		}
		if err := d.Precompute(name, red); err != nil {
			return nil, fmt.Errorf("%w: db: load reduction %q: %v", persist.ErrCorrupt, name, err)
		}
	}
	return d, nil
}
