package db

import (
	"bytes"
	"math"
	"testing"

	"emdsearch/internal/core"
	"emdsearch/internal/emd"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("accepted dimensionality 0")
	}
	d, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	if d.Dim() != 4 || d.Len() != 0 {
		t.Errorf("fresh database: dim %d len %d", d.Dim(), d.Len())
	}
}

func TestAddValidation(t *testing.T) {
	d, _ := New(3)
	if _, err := d.Add("a", emd.Histogram{0.5, 0.5}); err == nil {
		t.Error("accepted wrong dimensionality")
	}
	if _, err := d.Add("a", emd.Histogram{0.5, 0.5, 0.5}); err == nil {
		t.Error("accepted unnormalized histogram")
	}
	if _, err := d.Add("a", emd.Histogram{-0.5, 1.0, 0.5}); err == nil {
		t.Error("accepted negative entry")
	}
	id, err := d.Add("classA", emd.Histogram{0.2, 0.3, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if id != 0 || d.Len() != 1 {
		t.Errorf("id %d len %d, want 0 and 1", id, d.Len())
	}
	if item := d.Item(0); item.Label != "classA" || item.ID != 0 {
		t.Errorf("item = %+v", item)
	}
}

func TestPrecomputeBeforeAndAfterAdd(t *testing.T) {
	d, _ := New(4)
	if _, err := d.Add("x", emd.Histogram{0.25, 0.25, 0.25, 0.25}); err != nil {
		t.Fatal(err)
	}
	r, err := core.Adjacent(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Precompute("half", r); err != nil {
		t.Fatal(err)
	}
	// Items added after registration are reduced automatically.
	if _, err := d.Add("y", emd.Histogram{0.5, 0, 0, 0.5}); err != nil {
		t.Fatal(err)
	}
	vecs, ok := d.Reduced("half")
	if !ok || len(vecs) != 2 {
		t.Fatalf("reduced vectors: %v ok=%v", vecs, ok)
	}
	if math.Abs(vecs[0][0]-0.5) > 1e-12 || math.Abs(vecs[1][0]-0.5) > 1e-12 {
		t.Errorf("reduced vectors wrong: %v", vecs)
	}
	if got, ok := d.Reduction("half"); !ok || !got.Equal(r) {
		t.Error("registered reduction not retrievable")
	}
	if err := d.Precompute("half", r); err == nil {
		t.Error("accepted duplicate registration")
	}
	wrong := core.Identity(5)
	if err := d.Precompute("other", wrong); err == nil {
		t.Error("accepted reduction of wrong dimensionality")
	}
	if _, ok := d.Reduced("missing"); ok {
		t.Error("found unregistered reduction")
	}
}

func TestVectors(t *testing.T) {
	d, _ := New(2)
	d.Add("a", emd.Histogram{1, 0})
	d.Add("b", emd.Histogram{0, 1})
	vecs := d.Vectors()
	if len(vecs) != 2 || vecs[0][0] != 1 || vecs[1][1] != 1 {
		t.Errorf("Vectors = %v", vecs)
	}
	if v := d.Vector(1); v[1] != 1 {
		t.Errorf("Vector(1) = %v", v)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	d, _ := New(4)
	d.Add("a", emd.Histogram{0.25, 0.25, 0.25, 0.25})
	d.Add("b", emd.Histogram{0.7, 0.1, 0.1, 0.1})
	r, _ := core.Adjacent(4, 2)
	if err := d.Precompute("r2", r); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 2 || loaded.Dim() != 4 {
		t.Fatalf("loaded len %d dim %d", loaded.Len(), loaded.Dim())
	}
	if loaded.Item(1).Label != "b" {
		t.Errorf("label = %q", loaded.Item(1).Label)
	}
	vecs, ok := loaded.Reduced("r2")
	if !ok {
		t.Fatal("reduction lost in round trip")
	}
	if math.Abs(vecs[1][0]-0.8) > 1e-12 {
		t.Errorf("reduced vector after load: %v", vecs[1])
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a database"))); err == nil {
		t.Error("loaded garbage successfully")
	}
}
