// Package heapx provides a typed binary min-heap. It replaces the
// interface{}-boxed container/heap implementations on the index
// traversal hot paths: every container/heap Push allocates (the value
// escapes through the interface), while Heap[T] stores elements
// inline in a slice and moves them by value.
package heapx

// Heap is a binary heap of T ordered by the less function given at
// construction (a min-heap when less is "strictly before"). The zero
// value is not usable; call New.
type Heap[T any] struct {
	items []T
	less  func(a, b T) bool
}

// New returns an empty heap ordered by less, with room for hint
// elements.
func New[T any](hint int, less func(a, b T) bool) *Heap[T] {
	return &Heap[T]{items: make([]T, 0, hint), less: less}
}

// Len returns the number of elements.
func (h *Heap[T]) Len() int { return len(h.items) }

// Peek returns the minimum element without removing it. It must not
// be called on an empty heap.
func (h *Heap[T]) Peek() T { return h.items[0] }

// Push adds x.
func (h *Heap[T]) Push(x T) {
	h.items = append(h.items, x)
	h.up(len(h.items) - 1)
}

// Pop removes and returns the minimum element. It must not be called
// on an empty heap.
func (h *Heap[T]) Pop() T {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	var zero T
	h.items[last] = zero // release references held by pointerful T
	h.items = h.items[:last]
	if last > 0 {
		h.down(0)
	}
	return top
}

func (h *Heap[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.items[i], h.items[parent]) {
			return
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *Heap[T]) down(i int) {
	n := len(h.items)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && h.less(h.items[right], h.items[left]) {
			smallest = right
		}
		if !h.less(h.items[smallest], h.items[i]) {
			return
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
}
