package heapx

import (
	"container/heap"
	"math/rand"
	"sort"
	"testing"
)

func TestHeapSortsRandomInts(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(200)
		in := make([]int, n)
		for i := range in {
			in[i] = rng.Intn(100) - 50
		}
		h := New(0, func(a, b int) bool { return a < b })
		for _, v := range in {
			h.Push(v)
		}
		want := append([]int(nil), in...)
		sort.Ints(want)
		for i, w := range want {
			if h.Len() != n-i {
				t.Fatalf("trial %d: Len = %d, want %d", trial, h.Len(), n-i)
			}
			if got := h.Peek(); got != w {
				t.Fatalf("trial %d: Peek = %d, want %d", trial, got, w)
			}
			if got := h.Pop(); got != w {
				t.Fatalf("trial %d: pop %d = %d, want %d", trial, i, got, w)
			}
		}
		if h.Len() != 0 {
			t.Fatalf("trial %d: %d elements left", trial, h.Len())
		}
	}
}

// intHeap is a reference container/heap implementation for the
// interleaved-operation cross-check.
type intHeap []int

func (h intHeap) Len() int            { return len(h) }
func (h intHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h intHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *intHeap) Push(x interface{}) { *h = append(*h, x.(int)) }
func (h *intHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

func TestHeapMatchesContainerHeapInterleaved(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	h := New(8, func(a, b int) bool { return a < b })
	ref := &intHeap{}
	heap.Init(ref)
	for op := 0; op < 5000; op++ {
		if ref.Len() == 0 || rng.Intn(3) != 0 {
			v := rng.Intn(1000)
			h.Push(v)
			heap.Push(ref, v)
		} else {
			got, want := h.Pop(), heap.Pop(ref).(int)
			if got != want {
				t.Fatalf("op %d: Pop = %d, container/heap = %d", op, got, want)
			}
		}
		if h.Len() != ref.Len() {
			t.Fatalf("op %d: Len = %d, want %d", op, h.Len(), ref.Len())
		}
	}
}

func TestHeapStructKeys(t *testing.T) {
	type frame struct {
		key float64
		idx int
	}
	less := func(a, b frame) bool {
		if a.key != b.key {
			return a.key < b.key
		}
		return a.idx < b.idx
	}
	h := New(0, less)
	rng := rand.New(rand.NewSource(3))
	var all []frame
	for i := 0; i < 300; i++ {
		f := frame{key: float64(rng.Intn(40)), idx: i}
		all = append(all, f)
		h.Push(f)
	}
	sort.Slice(all, func(i, j int) bool { return less(all[i], all[j]) })
	for i, w := range all {
		if got := h.Pop(); got != w {
			t.Fatalf("pop %d = %+v, want %+v", i, got, w)
		}
	}
}
