// Package data generates the synthetic evaluation corpora standing in
// for the proprietary data sets of Wichterich et al. (SIGMOD 2008); see
// DESIGN.md section 4 for the substitution argument. Every generator
// renders actual procedural "images" (or spectra, or documents) and
// extracts feature histograms from them, so the full feature pipeline
// of a real deployment is exercised: raster -> tiling/quantization ->
// normalized histogram -> ground-distance matrix.
//
// All generators are deterministic in their seed.
package data

import (
	"fmt"
	"math/rand"

	"emdsearch/internal/db"
	"emdsearch/internal/emd"
	"emdsearch/internal/vecmath"
)

// Item is one generated object.
type Item struct {
	Label  string
	Vector emd.Histogram
}

// Dataset is a generated corpus: histograms with class labels, the
// ground-distance matrix of its feature space, and (for position-based
// ground distances) the bin positions, which the centroid lower bound
// needs.
type Dataset struct {
	Name      string
	Dim       int
	Cost      emd.CostMatrix
	Positions [][]float64
	Items     []Item
}

// Histograms returns the item vectors (shared, not copied).
func (ds *Dataset) Histograms() []emd.Histogram {
	out := make([]emd.Histogram, len(ds.Items))
	for i := range ds.Items {
		out[i] = ds.Items[i].Vector
	}
	return out
}

// ToDatabase loads the data set into a fresh database.
func (ds *Dataset) ToDatabase() (*db.Database, error) {
	d, err := db.New(ds.Dim)
	if err != nil {
		return nil, err
	}
	for i, item := range ds.Items {
		if _, err := d.Add(item.Label, item.Vector); err != nil {
			return nil, fmt.Errorf("data: item %d: %w", i, err)
		}
	}
	return d, nil
}

// Split partitions the data set into a database part and nQueries
// query histograms drawn from the tail. It fails if fewer than
// nQueries+1 items exist.
func (ds *Dataset) Split(nQueries int) (database []emd.Histogram, queries []emd.Histogram, err error) {
	if nQueries < 1 || nQueries >= len(ds.Items) {
		return nil, nil, fmt.Errorf("data: cannot split %d items into database plus %d queries", len(ds.Items), nQueries)
	}
	cut := len(ds.Items) - nQueries
	all := ds.Histograms()
	return all[:cut], all[cut:], nil
}

// raster is a minimal grayscale image used by the procedural
// renderers.
type raster struct {
	w, h int
	pix  []float64
}

func newRaster(w, h int) *raster {
	return &raster{w: w, h: h, pix: make([]float64, w*h)}
}

func (r *raster) at(x, y int) float64 { return r.pix[y*r.w+x] }

func (r *raster) add(x, y int, v float64) {
	if x < 0 || y < 0 || x >= r.w || y >= r.h {
		return
	}
	r.pix[y*r.w+x] += v
}

// addBlob paints an axis-aligned Gaussian blob.
func (r *raster) addBlob(cx, cy, sigmaX, sigmaY, amp float64) {
	x0 := int(cx - 3*sigmaX)
	x1 := int(cx + 3*sigmaX)
	y0 := int(cy - 3*sigmaY)
	y1 := int(cy + 3*sigmaY)
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			dx := (float64(x) - cx) / sigmaX
			dy := (float64(y) - cy) / sigmaY
			r.add(x, y, amp*gauss(dx)*gauss(dy))
		}
	}
}

// addWalk paints a random-walk stroke (vessel-like structure).
func (r *raster) addWalk(rng *rand.Rand, x, y, dirX, dirY, amp float64, steps int) {
	for s := 0; s < steps; s++ {
		r.add(int(x), int(y), amp)
		r.add(int(x)+1, int(y), amp*0.5)
		r.add(int(x), int(y)+1, amp*0.5)
		dirX += rng.NormFloat64() * 0.3
		dirY += rng.NormFloat64() * 0.3
		norm := vecmath.L2([]float64{dirX, dirY}, []float64{0, 0})
		if norm == 0 {
			dirX, dirY = 1, 0
			norm = 1
		}
		x += dirX / norm
		y += dirY / norm
	}
}

func gauss(t float64) float64 {
	return 1 / (1 + t*t) // light-tailed bump, cheaper than exp
}

// tileHistogram sums raster intensity over a tileRows x tileCols grid
// (row-major) and normalizes. A tiny floor keeps every bin strictly
// positive so histograms stay valid even for dark renders.
func tileHistogram(r *raster, tileRows, tileCols int) emd.Histogram {
	h := make(emd.Histogram, tileRows*tileCols)
	for y := 0; y < r.h; y++ {
		ty := y * tileRows / r.h
		for x := 0; x < r.w; x++ {
			tx := x * tileCols / r.w
			h[ty*tileCols+tx] += r.at(x, y)
		}
	}
	for i := range h {
		h[i] += 1e-9
	}
	return vecmath.Normalize(h)
}
