package data

import (
	"math"
	"testing"

	"emdsearch/internal/emd"
)

type generator struct {
	name string
	gen  func(n int, seed int64) (*Dataset, error)
	dim  int
}

func generators() []generator {
	return []generator{
		{"retina", Retina, RetinaDim},
		{"irma", IRMA, IRMADim},
		{"color", ColorImages, ColorDim},
		{"music", func(n int, seed int64) (*Dataset, error) { return MusicSpectra(n, 48, seed) }, 48},
		{"words", func(n int, seed int64) (*Dataset, error) { return Words(n, 64, seed) }, 64},
	}
}

func TestGeneratorsProduceValidHistograms(t *testing.T) {
	for _, g := range generators() {
		t.Run(g.name, func(t *testing.T) {
			ds, err := g.gen(30, 7)
			if err != nil {
				t.Fatal(err)
			}
			if ds.Dim != g.dim {
				t.Fatalf("dim = %d, want %d", ds.Dim, g.dim)
			}
			if len(ds.Items) != 30 {
				t.Fatalf("items = %d, want 30", len(ds.Items))
			}
			if ds.Cost.Rows() != g.dim || ds.Cost.Cols() != g.dim {
				t.Fatalf("cost matrix %dx%d", ds.Cost.Rows(), ds.Cost.Cols())
			}
			if err := ds.Cost.Validate(); err != nil {
				t.Fatalf("cost matrix invalid: %v", err)
			}
			if !ds.Cost.IsSymmetric() {
				t.Error("cost matrix not symmetric")
			}
			for i, item := range ds.Items {
				if err := emd.Validate(item.Vector); err != nil {
					t.Fatalf("item %d: %v", i, err)
				}
				if item.Label == "" {
					t.Fatalf("item %d has no label", i)
				}
			}
			if ds.Positions != nil && len(ds.Positions) != g.dim {
				t.Errorf("positions: %d, want %d", len(ds.Positions), g.dim)
			}
		})
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	for _, g := range generators() {
		t.Run(g.name, func(t *testing.T) {
			a, err := g.gen(10, 42)
			if err != nil {
				t.Fatal(err)
			}
			b, err := g.gen(10, 42)
			if err != nil {
				t.Fatal(err)
			}
			for i := range a.Items {
				if a.Items[i].Label != b.Items[i].Label {
					t.Fatalf("labels differ at %d", i)
				}
				for j := range a.Items[i].Vector {
					if a.Items[i].Vector[j] != b.Items[i].Vector[j] {
						t.Fatalf("vectors differ at item %d bin %d", i, j)
					}
				}
			}
		})
	}
}

func TestGeneratorsSeedSensitivity(t *testing.T) {
	for _, g := range generators() {
		t.Run(g.name, func(t *testing.T) {
			a, _ := g.gen(5, 1)
			b, _ := g.gen(5, 2)
			same := true
			for i := range a.Items {
				for j := range a.Items[i].Vector {
					if a.Items[i].Vector[j] != b.Items[i].Vector[j] {
						same = false
					}
				}
			}
			if same {
				t.Error("different seeds produced identical data")
			}
		})
	}
}

func TestGeneratorsRejectBadArgs(t *testing.T) {
	if _, err := Retina(0, 1); err == nil {
		t.Error("Retina accepted n=0")
	}
	if _, err := IRMA(-1, 1); err == nil {
		t.Error("IRMA accepted n<0")
	}
	if _, err := ColorImages(0, 1); err == nil {
		t.Error("ColorImages accepted n=0")
	}
	if _, err := MusicSpectra(5, 4, 1); err == nil {
		t.Error("MusicSpectra accepted tiny d")
	}
	if _, err := Words(5, 4, 1); err == nil {
		t.Error("Words accepted tiny vocabulary")
	}
}

// TestClassStructure verifies the property the flow-based reduction
// relies on: same-class objects are, on average, closer under the EMD
// than cross-class objects.
func TestClassStructure(t *testing.T) {
	for _, g := range generators() {
		t.Run(g.name, func(t *testing.T) {
			ds, err := g.gen(24, 11)
			if err != nil {
				t.Fatal(err)
			}
			dist, err := emd.NewDist(ds.Cost)
			if err != nil {
				t.Fatal(err)
			}
			var intra, inter float64
			var nIntra, nInter int
			for i := 0; i < len(ds.Items); i++ {
				for j := i + 1; j < len(ds.Items); j++ {
					d := dist.Distance(ds.Items[i].Vector, ds.Items[j].Vector)
					if ds.Items[i].Label == ds.Items[j].Label {
						intra += d
						nIntra++
					} else {
						inter += d
						nInter++
					}
				}
			}
			if nIntra == 0 || nInter == 0 {
				t.Skip("degenerate class split in small sample")
			}
			intra /= float64(nIntra)
			inter /= float64(nInter)
			if intra >= inter {
				t.Errorf("no class structure: intra %.4f >= inter %.4f", intra, inter)
			}
		})
	}
}

func TestSplit(t *testing.T) {
	ds, err := MusicSpectra(20, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	dbPart, queries, err := ds.Split(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(dbPart) != 15 || len(queries) != 5 {
		t.Fatalf("split sizes %d/%d, want 15/5", len(dbPart), len(queries))
	}
	if _, _, err := ds.Split(20); err == nil {
		t.Error("accepted nQueries >= n")
	}
	if _, _, err := ds.Split(0); err == nil {
		t.Error("accepted nQueries = 0")
	}
}

func TestToDatabase(t *testing.T) {
	ds, err := ColorImages(12, 5)
	if err != nil {
		t.Fatal(err)
	}
	database, err := ds.ToDatabase()
	if err != nil {
		t.Fatal(err)
	}
	if database.Len() != 12 || database.Dim() != ColorDim {
		t.Fatalf("database %d items, dim %d", database.Len(), database.Dim())
	}
	if database.Item(3).Label != ds.Items[3].Label {
		t.Error("labels lost")
	}
}

func TestIRMAGrayLevelSpread(t *testing.T) {
	// Radiography histograms must use a reasonable part of the gray
	// range, not collapse into a couple of bins.
	ds, err := IRMA(10, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i, item := range ds.Items {
		active := 0
		for _, v := range item.Vector {
			if v > 1e-6 {
				active++
			}
		}
		if active < 10 {
			t.Errorf("item %d uses only %d gray levels", i, active)
		}
	}
}

func TestRetinaTilingMassSpread(t *testing.T) {
	ds, err := Retina(10, 13)
	if err != nil {
		t.Fatal(err)
	}
	for i, item := range ds.Items {
		// The vignette guarantees mass in central tiles; no single tile
		// may hold almost everything.
		max := 0.0
		for _, v := range item.Vector {
			if v > max {
				max = v
			}
		}
		if max > 0.5 {
			t.Errorf("item %d concentrates %.2f mass in one tile", i, max)
		}
	}
}

func TestZipfRankDistribution(t *testing.T) {
	ds, err := Words(60, 32, 17)
	if err != nil {
		t.Fatal(err)
	}
	// Aggregate mass should be heavy on low token indices within each
	// topic (Zipf) — check the aggregate is not uniform.
	agg := make([]float64, 32)
	for _, item := range ds.Items {
		for j, v := range item.Vector {
			agg[j] += v
		}
	}
	var first, last float64
	for j := 0; j < 8; j++ {
		first += agg[j]
	}
	for j := 24; j < 32; j++ {
		last += agg[j]
	}
	if first <= last {
		t.Errorf("no Zipf head: first-octile mass %.3f <= last-octile %.3f", first, last)
	}
	if math.IsNaN(first) || math.IsNaN(last) {
		t.Fatal("NaN in aggregate")
	}
}

func TestGaussianMixtures(t *testing.T) {
	ds, err := GaussianMixtures(40, 32, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Dim != 32 || len(ds.Items) != 40 {
		t.Fatalf("dim %d items %d", ds.Dim, len(ds.Items))
	}
	for i, item := range ds.Items {
		if err := emd.Validate(item.Vector); err != nil {
			t.Fatalf("item %d: %v", i, err)
		}
	}
	// Determinism and argument validation.
	a, _ := GaussianMixtures(5, 16, 2, 9)
	b, _ := GaussianMixtures(5, 16, 2, 9)
	for i := range a.Items {
		for j := range a.Items[i].Vector {
			if a.Items[i].Vector[j] != b.Items[i].Vector[j] {
				t.Fatal("not deterministic")
			}
		}
	}
	if _, err := GaussianMixtures(0, 16, 2, 1); err == nil {
		t.Error("accepted n=0")
	}
	if _, err := GaussianMixtures(5, 16, 10, 1); err == nil {
		t.Error("accepted modes > d/2")
	}
}
