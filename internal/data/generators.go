package data

import (
	"fmt"
	"math"
	"math/rand"

	"emdsearch/internal/emd"
	"emdsearch/internal/vecmath"
)

// RetinaTileRows and RetinaTileCols give the 12x8 tiling of the
// retina-like corpus, matching the 96-dimensional tiled features of
// the paper's bioinformatics scenario.
const (
	RetinaTileRows = 12
	RetinaTileCols = 8
	// RetinaDim is the feature dimensionality (96).
	RetinaDim = RetinaTileRows * RetinaTileCols
)

// Retina generates n retina-like images and extracts 96-dimensional
// tiled intensity histograms. Classes model disease severity through
// the number of lesion blobs; vessels emanate from an optic-disc
// location that varies per class, giving the mass the spatial
// correlation structure the reduction heuristics exploit. The ground
// distance is the Euclidean distance between tile centers.
func Retina(n int, seed int64) (*Dataset, error) {
	if n < 1 {
		return nil, fmt.Errorf("data: Retina needs n >= 1, got %d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	pos := emd.GridPositions(RetinaTileRows, RetinaTileCols)
	cost, err := emd.PositionCost(pos, pos, 2)
	if err != nil {
		return nil, err
	}
	classes := []struct {
		name    string
		lesions int
		vessels int
		discX   float64
		discY   float64
		// anchors are the class-typical lesion regions (fractions of
		// width/height); lesions scatter around them, which gives
		// same-class images strongly overlapping mass distributions —
		// the cluster structure real retrieval corpora exhibit.
		anchors [][2]float64
	}{
		{"healthy", 1, 6, 0.3, 0.5, [][2]float64{{0.3, 0.3}}},
		{"mild", 3, 5, 0.5, 0.2, [][2]float64{{0.7, 0.25}, {0.6, 0.4}}},
		{"moderate", 6, 4, 0.75, 0.6, [][2]float64{{0.25, 0.7}, {0.4, 0.85}}},
		{"severe", 9, 3, 0.5, 0.8, [][2]float64{{0.8, 0.75}, {0.75, 0.5}, {0.5, 0.6}}},
	}
	const w, h = 64, 96
	items := make([]Item, n)
	for i := 0; i < n; i++ {
		cl := classes[rng.Intn(len(classes))]
		img := newRaster(w, h)
		// Faint background vignette centered on the retina; most of
		// the mass lives in the discriminative structures.
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				dx := (float64(x) - float64(w)/2) / (float64(w) / 2)
				dy := (float64(y) - float64(h)/2) / (float64(h) / 2)
				img.add(x, y, 0.06*gauss(1.4*math.Hypot(dx, dy)))
			}
		}
		// Vessels from the class's optic-disc location.
		discX := cl.discX*float64(w) + rng.NormFloat64()*2
		discY := cl.discY*float64(h) + rng.NormFloat64()*3
		for v := 0; v < cl.vessels; v++ {
			angle := rng.Float64() * 2 * math.Pi
			img.addWalk(rng, discX, discY, math.Cos(angle), math.Sin(angle), 0.8, 40+rng.Intn(40))
		}
		// Lesions: bright blobs around the class anchor regions.
		nl := cl.lesions + rng.Intn(2)
		for l := 0; l < nl; l++ {
			a := cl.anchors[rng.Intn(len(cl.anchors))]
			cx := a[0]*float64(w) + rng.NormFloat64()*4
			cy := a[1]*float64(h) + rng.NormFloat64()*5
			img.addBlob(cx, cy, 1.5+rng.Float64()*2, 1.5+rng.Float64()*2, 1.4)
		}
		items[i] = Item{Label: cl.name, Vector: tileHistogram(img, RetinaTileRows, RetinaTileCols)}
	}
	return &Dataset{
		Name:      "retina-sim",
		Dim:       RetinaDim,
		Cost:      cost,
		Positions: pos,
		Items:     items,
	}, nil
}

// IRMADim is the dimensionality of the radiography-like corpus: a
// 199-level gray-value histogram.
const IRMADim = 199

// IRMA generates n radiography-like images and extracts 199-bin
// gray-level histograms under the linear |i-j| ground distance (scaled
// to [0,1] per level step). Classes model body regions through the
// number, brightness and extent of anatomical structures over a soft
// tissue background.
func IRMA(n int, seed int64) (*Dataset, error) {
	if n < 1 {
		return nil, fmt.Errorf("data: IRMA needs n >= 1, got %d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	cost, err := emd.ScaleCost(emd.LinearCost(IRMADim), 1.0/float64(IRMADim-1))
	if err != nil {
		return nil, err
	}
	pos := make([][]float64, IRMADim)
	for i := range pos {
		pos[i] = []float64{float64(i) / float64(IRMADim-1)}
	}
	classes := []struct {
		name   string
		bones  int
		level  float64 // bone gray level (bright on radiographs)
		tissue float64 // soft-tissue gray level
	}{
		{"chest", 8, 0.85, 0.35},
		{"skull", 3, 0.95, 0.45},
		{"hand", 12, 0.75, 0.2},
		{"pelvis", 5, 0.9, 0.4},
		{"spine", 10, 0.8, 0.3},
	}
	const w, h = 48, 48
	items := make([]Item, n)
	for i := 0; i < n; i++ {
		cl := classes[rng.Intn(len(classes))]
		img := newRaster(w, h)
		// Soft tissue background with smooth variation.
		tissue := cl.tissue + rng.NormFloat64()*0.03
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				img.add(x, y, tissue*(0.8+0.4*gauss(3*(float64(x)/w-0.5))))
			}
		}
		// Bone structures: bright elongated blobs.
		for b := 0; b < cl.bones; b++ {
			img.addBlob(rng.Float64()*w, rng.Float64()*h,
				1+rng.Float64()*2, 3+rng.Float64()*6, cl.level+rng.NormFloat64()*0.05)
		}
		// Gray-level histogram over 199 bins.
		hist := make(emd.Histogram, IRMADim)
		for _, p := range img.pix {
			level := int(p * float64(IRMADim) / 2.5)
			if level < 0 {
				level = 0
			}
			if level >= IRMADim {
				level = IRMADim - 1
			}
			hist[level]++
		}
		for k := range hist {
			hist[k] += 1e-9
		}
		items[i] = Item{Label: cl.name, Vector: vecmath.Normalize(hist)}
	}
	return &Dataset{
		Name:      "irma-sim",
		Dim:       IRMADim,
		Cost:      cost,
		Positions: pos,
		Items:     items,
	}, nil
}

// ColorDim is the dimensionality of the color-histogram corpus: a
// 4x4x4 RGB quantization.
const ColorDim = 64

// ColorImages generates n procedural RGB images and extracts 64-bin
// color histograms (4x4x4 RGB grid) under the Euclidean ground
// distance between bin-center colors — the classic image-retrieval
// setting from the paper's introduction. Classes are scene palettes.
func ColorImages(n int, seed int64) (*Dataset, error) {
	if n < 1 {
		return nil, fmt.Errorf("data: ColorImages needs n >= 1, got %d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	// Bin centers of the 4x4x4 RGB quantization, coordinates in [0,1].
	pos := make([][]float64, 0, ColorDim)
	for r := 0; r < 4; r++ {
		for g := 0; g < 4; g++ {
			for b := 0; b < 4; b++ {
				pos = append(pos, []float64{(float64(r) + 0.5) / 4, (float64(g) + 0.5) / 4, (float64(b) + 0.5) / 4})
			}
		}
	}
	cost, err := emd.PositionCost(pos, pos, 2)
	if err != nil {
		return nil, err
	}
	classes := []struct {
		name    string
		palette [][3]float64
	}{
		{"sunset", [][3]float64{{0.9, 0.4, 0.1}, {0.95, 0.7, 0.3}, {0.5, 0.2, 0.4}}},
		{"forest", [][3]float64{{0.1, 0.5, 0.15}, {0.3, 0.6, 0.2}, {0.35, 0.25, 0.1}}},
		{"sea", [][3]float64{{0.1, 0.3, 0.7}, {0.2, 0.5, 0.8}, {0.8, 0.85, 0.9}}},
		{"urban", [][3]float64{{0.5, 0.5, 0.55}, {0.3, 0.3, 0.35}, {0.8, 0.75, 0.7}}},
	}
	const w, h = 32, 32
	items := make([]Item, n)
	for i := 0; i < n; i++ {
		cl := classes[rng.Intn(len(classes))]
		hist := make(emd.Histogram, ColorDim)
		// Vertical gradient between two palette colors plus blobs of a
		// third; quantize each pixel into the RGB grid.
		top := cl.palette[rng.Intn(len(cl.palette))]
		bottom := cl.palette[rng.Intn(len(cl.palette))]
		accent := cl.palette[rng.Intn(len(cl.palette))]
		blobX, blobY := rng.Float64()*w, rng.Float64()*h
		blobR := 4 + rng.Float64()*8
		for y := 0; y < h; y++ {
			t := float64(y) / float64(h-1)
			for x := 0; x < w; x++ {
				var c [3]float64
				for k := 0; k < 3; k++ {
					c[k] = top[k]*(1-t) + bottom[k]*t + rng.NormFloat64()*0.04
				}
				if dx, dy := float64(x)-blobX, float64(y)-blobY; dx*dx+dy*dy < blobR*blobR {
					c = accent
				}
				bin := 0
				for k := 0; k < 3; k++ {
					q := int(clamp01(c[k]) * 4)
					if q > 3 {
						q = 3
					}
					bin = bin*4 + q
				}
				hist[bin]++
			}
		}
		for k := range hist {
			hist[k] += 1e-9
		}
		items[i] = Item{Label: cl.name, Vector: vecmath.Normalize(hist)}
	}
	return &Dataset{
		Name:      "color-sim",
		Dim:       ColorDim,
		Cost:      cost,
		Positions: pos,
		Items:     items,
	}, nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// MusicSpectra generates n spectral-band histograms of dimension d
// (default use: 48) under the linear ground distance. Classes are
// "instruments": harmonic series over a class fundamental with
// overtone decay, plus a noise floor — the music-retrieval setting the
// paper's introduction cites.
func MusicSpectra(n, d int, seed int64) (*Dataset, error) {
	if n < 1 || d < 8 {
		return nil, fmt.Errorf("data: MusicSpectra needs n >= 1 and d >= 8, got n=%d d=%d", n, d)
	}
	rng := rand.New(rand.NewSource(seed))
	cost, err := emd.ScaleCost(emd.LinearCost(d), 1.0/float64(d-1))
	if err != nil {
		return nil, err
	}
	pos := make([][]float64, d)
	for i := range pos {
		pos[i] = []float64{float64(i) / float64(d-1)}
	}
	classes := []struct {
		name        string
		fundamental float64 // as fraction of the band range
		decay       float64 // overtone amplitude decay
		noise       float64
	}{
		{"flute", 0.08, 0.35, 0.02},
		{"violin", 0.12, 0.65, 0.04},
		{"trumpet", 0.1, 0.8, 0.05},
		{"drums", 0.05, 0.95, 0.3},
	}
	items := make([]Item, n)
	for i := 0; i < n; i++ {
		cl := classes[rng.Intn(len(classes))]
		h := make(emd.Histogram, d)
		f0 := cl.fundamental * float64(d) * (1 + rng.NormFloat64()*0.08)
		amp := 1.0
		for harmonic := 1; harmonic <= 12; harmonic++ {
			center := f0 * float64(harmonic)
			if center >= float64(d) {
				break
			}
			width := 0.5 + 0.08*center
			lo := int(center - 3*width)
			hi := int(center + 3*width)
			for b := lo; b <= hi; b++ {
				if b < 0 || b >= d {
					continue
				}
				t := (float64(b) - center) / width
				h[b] += amp * gauss(t)
			}
			amp *= cl.decay
		}
		for b := 0; b < d; b++ {
			h[b] += cl.noise * rng.Float64() / float64(d) * 10
			h[b] += 1e-9
		}
		items[i] = Item{Label: cl.name, Vector: vecmath.Normalize(h)}
	}
	return &Dataset{
		Name:      "music-sim",
		Dim:       d,
		Cost:      cost,
		Positions: pos,
		Items:     items,
	}, nil
}

// Words generates n word-frequency histograms over a vocabulary of the
// given size, the phishing-detection setting cited in the paper's
// introduction (EMD over token distributions of web pages). Tokens get
// stable 2-D "semantic" embeddings clustered by latent topic (derived
// from the seed); the ground distance is the Euclidean embedding
// distance. Classes mix a dominant topic with Zipf-weighted background
// vocabulary.
func Words(n, vocab int, seed int64) (*Dataset, error) {
	if n < 1 || vocab < 8 {
		return nil, fmt.Errorf("data: Words needs n >= 1 and vocab >= 8, got n=%d vocab=%d", n, vocab)
	}
	rng := rand.New(rand.NewSource(seed))
	const topics = 4
	names := []string{"banking", "shopping", "social", "news"}
	// Stable token embeddings: each token belongs to a latent topic and
	// sits near that topic's anchor.
	anchors := [][]float64{{0, 0}, {4, 0}, {0, 4}, {4, 4}}
	pos := make([][]float64, vocab)
	tokenTopic := make([]int, vocab)
	for tkn := 0; tkn < vocab; tkn++ {
		tp := tkn % topics
		tokenTopic[tkn] = tp
		pos[tkn] = []float64{
			anchors[tp][0] + rng.NormFloat64()*0.6,
			anchors[tp][1] + rng.NormFloat64()*0.6,
		}
	}
	cost, err := emd.PositionCost(pos, pos, 2)
	if err != nil {
		return nil, err
	}
	items := make([]Item, n)
	for i := 0; i < n; i++ {
		tp := rng.Intn(topics)
		h := make(emd.Histogram, vocab)
		// Zipf-weighted draws: dominant topic with 70% probability,
		// any token otherwise.
		const draws = 400
		for dI := 0; dI < draws; dI++ {
			var tkn int
			if rng.Float64() < 0.7 {
				// Random token of the dominant topic, Zipf-ranked.
				r := zipfRank(rng, vocab/topics)
				tkn = r*topics + tp
			} else {
				tkn = zipfRank(rng, vocab)
			}
			if tkn >= vocab {
				tkn = vocab - 1
			}
			h[tkn]++
		}
		for k := range h {
			h[k] += 1e-9
		}
		items[i] = Item{Label: names[tp], Vector: vecmath.Normalize(h)}
	}
	return &Dataset{
		Name:      "words-sim",
		Dim:       vocab,
		Cost:      cost,
		Positions: pos,
		Items:     items,
	}, nil
}

// zipfRank draws a rank in [0, n) with probability proportional to
// 1/(rank+1).
func zipfRank(rng *rand.Rand, n int) int {
	// Inverse-CDF over harmonic weights; n is small, a linear walk is
	// fine and allocation free.
	var hn float64
	for i := 1; i <= n; i++ {
		hn += 1 / float64(i)
	}
	u := rng.Float64() * hn
	var acc float64
	for i := 1; i <= n; i++ {
		acc += 1 / float64(i)
		if u <= acc {
			return i - 1
		}
	}
	return n - 1
}

// GaussianMixtures generates n histograms over d 1-D bins, each a
// mixture of `modes` Gaussian bumps whose centers are class-specific.
// It is the fully controllable synthetic corpus for method studies:
// class structure, dimensionality and smoothness are all explicit
// parameters, unlike the procedural image corpora. Ground distance is
// the scaled linear |i-j| cost.
func GaussianMixtures(n, d, modes int, seed int64) (*Dataset, error) {
	if n < 1 || d < 4 || modes < 1 || modes > d/2 {
		return nil, fmt.Errorf("data: GaussianMixtures(%d, %d, %d): invalid arguments", n, d, modes)
	}
	rng := rand.New(rand.NewSource(seed))
	cost, err := emd.ScaleCost(emd.LinearCost(d), 1.0/float64(d-1))
	if err != nil {
		return nil, err
	}
	pos := make([][]float64, d)
	for i := range pos {
		pos[i] = []float64{float64(i) / float64(d-1)}
	}
	const classes = 5
	// Class prototypes: mode centers and widths drawn once per class.
	type proto struct {
		centers []float64
		widths  []float64
	}
	protos := make([]proto, classes)
	for c := range protos {
		protos[c].centers = make([]float64, modes)
		protos[c].widths = make([]float64, modes)
		for m := 0; m < modes; m++ {
			protos[c].centers[m] = rng.Float64() * float64(d-1)
			protos[c].widths[m] = 1 + rng.Float64()*float64(d)/10
		}
	}
	items := make([]Item, n)
	for i := 0; i < n; i++ {
		c := rng.Intn(classes)
		h := make(emd.Histogram, d)
		for m := 0; m < modes; m++ {
			center := protos[c].centers[m] + rng.NormFloat64()*protos[c].widths[m]*0.2
			width := protos[c].widths[m] * (0.8 + 0.4*rng.Float64())
			amp := 0.5 + rng.Float64()
			for b := 0; b < d; b++ {
				t := (float64(b) - center) / width
				h[b] += amp * gauss(t)
			}
		}
		for b := range h {
			h[b] += 1e-9
		}
		items[i] = Item{Label: fmt.Sprintf("class-%d", c), Vector: vecmath.Normalize(h)}
	}
	return &Dataset{
		Name:      "gaussian-sim",
		Dim:       d,
		Cost:      cost,
		Positions: pos,
		Items:     items,
	}, nil
}
