package data

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"emdsearch/internal/emd"
)

func TestReadVectors(t *testing.T) {
	input := `# comment
0.5 0.25 0.25
a: 1 0 0

b: 0 0.5 0.5
`
	vecs, labels, err := ReadVectors(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(vecs) != 3 {
		t.Fatalf("got %d vectors, want 3", len(vecs))
	}
	if labels[0] != "" || labels[1] != "a" || labels[2] != "b" {
		t.Errorf("labels = %v", labels)
	}
	if vecs[1][0] != 1 || vecs[2][2] != 0.5 {
		t.Errorf("vectors = %v", vecs)
	}
}

func TestReadVectorsErrors(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"empty", ""},
		{"only comments", "# nothing\n"},
		{"ragged", "1 2 3\n1 2\n"},
		{"not numeric", "1 abc 3\n"},
		{"label only", "x:\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := ReadVectors(strings.NewReader(tc.input)); err == nil {
				t.Fatalf("accepted %q", tc.input)
			}
		})
	}
}

func TestLoadDataset(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "hists.txt")
	content := "a: 2 2 4\nb: 1 0 1\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	ds, err := LoadDataset(path, "external", emd.LinearCost(3), nil)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Dim != 3 || len(ds.Items) != 2 {
		t.Fatalf("dim %d items %d", ds.Dim, len(ds.Items))
	}
	// Histograms normalized on load.
	if ds.Items[0].Vector[2] != 0.5 {
		t.Errorf("normalization wrong: %v", ds.Items[0].Vector)
	}
	if ds.Items[1].Label != "b" {
		t.Errorf("label = %q", ds.Items[1].Label)
	}
	// Usable end to end.
	database, err := ds.ToDatabase()
	if err != nil {
		t.Fatal(err)
	}
	if database.Len() != 2 {
		t.Error("database load failed")
	}
}

func TestLoadDatasetErrors(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(path, []byte("1 2 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDataset(path, "x", emd.LinearCost(5), nil); err == nil {
		t.Error("accepted mismatched cost dimensionality")
	}
	if _, err := LoadDataset(filepath.Join(dir, "missing.txt"), "x", emd.LinearCost(3), nil); err == nil {
		t.Error("accepted missing file")
	}
	neg := filepath.Join(dir, "neg.txt")
	if err := os.WriteFile(neg, []byte("1 -2 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDataset(neg, "x", emd.LinearCost(3), nil); err == nil {
		t.Error("accepted negative entries")
	}
}
