package data

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"emdsearch/internal/emd"
)

// ReadVectors parses whitespace-separated numeric vectors, one per
// line, from r. Blank lines and lines starting with '#' are skipped.
// An optional leading "label:" token (any token ending in ':') names
// the vector's class. All vectors must share one dimensionality.
//
// This is the interchange format of cmd/emddist and cmd/emdgen
// consumers: plain text, trivially produced by any feature extractor.
func ReadVectors(r io.Reader) (vectors [][]float64, labels []string, err error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	dim := -1
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		label := ""
		if strings.HasSuffix(fields[0], ":") {
			label = strings.TrimSuffix(fields[0], ":")
			fields = fields[1:]
		}
		if len(fields) == 0 {
			return nil, nil, fmt.Errorf("data: line %d: label without values", lineNo)
		}
		vec := make([]float64, len(fields))
		for i, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("data: line %d: %w", lineNo, err)
			}
			vec[i] = v
		}
		if dim == -1 {
			dim = len(vec)
		} else if len(vec) != dim {
			return nil, nil, fmt.Errorf("data: line %d has %d values, want %d", lineNo, len(vec), dim)
		}
		vectors = append(vectors, vec)
		labels = append(labels, label)
	}
	if err := scanner.Err(); err != nil {
		return nil, nil, err
	}
	if len(vectors) == 0 {
		return nil, nil, fmt.Errorf("data: no vectors found")
	}
	return vectors, labels, nil
}

// LoadDataset reads histograms from path, normalizes them, and wraps
// them as a Dataset under the given ground distance. Positions may be
// nil for non-positional costs.
func LoadDataset(path, name string, cost emd.CostMatrix, positions [][]float64) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	vectors, labels, err := ReadVectors(f)
	if err != nil {
		return nil, fmt.Errorf("data: %s: %w", path, err)
	}
	if err := cost.Validate(); err != nil {
		return nil, err
	}
	dim := len(vectors[0])
	if cost.Rows() != dim || cost.Cols() != dim {
		return nil, fmt.Errorf("data: cost matrix is %dx%d, vectors are %d-dimensional", cost.Rows(), cost.Cols(), dim)
	}
	items := make([]Item, len(vectors))
	for i, v := range vectors {
		h := emd.Normalize(v)
		if err := emd.Validate(h); err != nil {
			return nil, fmt.Errorf("data: %s: vector %d: %w", path, i, err)
		}
		items[i] = Item{Label: labels[i], Vector: h}
	}
	return &Dataset{
		Name:      name,
		Dim:       dim,
		Cost:      cost,
		Positions: positions,
		Items:     items,
	}, nil
}
