package mtree

import (
	"bytes"
	"encoding/gob"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// euclid2D builds an n-point 2-D Euclidean test metric.
func euclid2D(rng *rand.Rand, n int) ([][2]float64, DistFunc) {
	pts := make([][2]float64, n)
	for i := range pts {
		pts[i] = [2]float64{rng.Float64() * 10, rng.Float64() * 10}
	}
	dist := func(i, j int) float64 {
		return math.Hypot(pts[i][0]-pts[j][0], pts[i][1]-pts[j][1])
	}
	return pts, dist
}

func buildTestTree(t *testing.T, dist DistFunc, n int, seed int64) *Tree {
	t.Helper()
	tr, err := New(dist, 6, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := 0; i < n; i++ {
		tr.Insert(i)
	}
	return tr
}

// drainStream collects all emissions, asserting monotone distances.
func drainStream(t *testing.T, s *Stream) []Result {
	t.Helper()
	var out []Result
	prev := math.Inf(-1)
	for {
		r, ok := s.Next()
		if !ok {
			return out
		}
		if r.Dist < prev {
			t.Fatalf("emission %d: Dist %g < previous %g", len(out), r.Dist, prev)
		}
		prev = r.Dist
		out = append(out, r)
	}
}

func TestStreamEmitsAllInOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(300)
		pts, dist := euclid2D(rng, n)
		tr := buildTestTree(t, dist, n, int64(trial))
		q := [2]float64{rng.Float64() * 10, rng.Float64() * 10}
		qdist := func(i int) float64 {
			return math.Hypot(q[0]-pts[i][0], q[1]-pts[i][1])
		}
		got := drainStream(t, tr.Stream(qdist, nil))
		if len(got) != n {
			t.Fatalf("trial %d: %d emissions, want %d", trial, len(got), n)
		}
		want := make([]Result, n)
		for i := range want {
			want[i] = Result{Index: i, Dist: qdist(i)}
		}
		sort.Slice(want, func(i, j int) bool {
			if want[i].Dist != want[j].Dist {
				return want[i].Dist < want[j].Dist
			}
			return want[i].Index < want[j].Index
		})
		seen := make(map[int]bool, n)
		for i, r := range got {
			if seen[r.Index] {
				t.Fatalf("trial %d: index %d emitted twice", trial, r.Index)
			}
			seen[r.Index] = true
			if math.Abs(r.Dist-want[i].Dist) > 1e-9 {
				t.Fatalf("trial %d emission %d: Dist = %g, want %g", trial, i, r.Dist, want[i].Dist)
			}
		}
	}
}

func TestStreamSkipsDeleted(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	n := 200
	pts, dist := euclid2D(rng, n)
	tr := buildTestTree(t, dist, n, 7)
	deleted := map[int]bool{}
	for i := 0; i < 40; i++ {
		deleted[rng.Intn(n)] = true
	}
	q := [2]float64{5, 5}
	qdist := func(i int) float64 {
		return math.Hypot(q[0]-pts[i][0], q[1]-pts[i][1])
	}
	got := drainStream(t, tr.Stream(qdist, func(id int) bool { return deleted[id] }))
	if len(got) != n-len(deleted) {
		t.Fatalf("%d emissions, want %d", len(got), n-len(deleted))
	}
	for _, r := range got {
		if deleted[r.Index] {
			t.Fatalf("deleted index %d emitted", r.Index)
		}
	}
}

// TestStreamPrefixMatchesKNN: consuming k emissions equals the batch
// KNN answer — the property the engine's incremental filter relies on.
func TestStreamPrefixMatchesKNN(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	n := 500
	pts, dist := euclid2D(rng, n)
	tr := buildTestTree(t, dist, n, 9)
	for _, k := range []int{1, 5, 25} {
		q := [2]float64{rng.Float64() * 10, rng.Float64() * 10}
		qdist := func(i int) float64 {
			return math.Hypot(q[0]-pts[i][0], q[1]-pts[i][1])
		}
		want, _, err := tr.KNN(qdist, k)
		if err != nil {
			t.Fatalf("KNN: %v", err)
		}
		s := tr.Stream(qdist, nil)
		for i := 0; i < k; i++ {
			r, ok := s.Next()
			if !ok {
				t.Fatalf("k=%d: stream dry after %d emissions", k, i)
			}
			if r.Index != want[i].Index || math.Abs(r.Dist-want[i].Dist) > 1e-9 {
				t.Fatalf("k=%d emission %d: got (%d, %g), want (%d, %g)",
					k, i, r.Index, r.Dist, want[i].Index, want[i].Dist)
			}
		}
		if st := s.Stats(); st.DistanceCalls >= n && n > 50 {
			t.Fatalf("k=%d: %d distance calls for n=%d, expected pruning", k, st.DistanceCalls, n)
		}
	}
}

func TestFlattenRestoreRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	for _, n := range []int{0, 1, 5, 120} {
		pts, dist := euclid2D(rng, n+1) // n+1 so qdist works for n=0
		tr := buildTestTree(t, dist, n, 11)
		flat := tr.Flatten()

		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(flat); err != nil {
			t.Fatalf("n=%d: gob encode: %v", n, err)
		}
		var back Flat
		if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
			t.Fatalf("n=%d: gob decode: %v", n, err)
		}
		re, err := RestoreFlat(&back, n, rand.New(rand.NewSource(12)))
		if err != nil {
			t.Fatalf("n=%d: RestoreFlat: %v", n, err)
		}
		if re.Len() != n || re.Nodes() != tr.Nodes() {
			t.Fatalf("n=%d: restored Len/Nodes = %d/%d, want %d/%d", n, re.Len(), re.Nodes(), n, tr.Nodes())
		}
		q := [2]float64{3, 7}
		qdist := func(i int) float64 {
			return math.Hypot(q[0]-pts[i][0], q[1]-pts[i][1])
		}
		a := drainStream(t, tr.Stream(qdist, nil))
		b := drainStream(t, re.Stream(qdist, nil))
		if len(a) != len(b) {
			t.Fatalf("n=%d: %d vs %d emissions after restore", n, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("n=%d emission %d: %+v vs %+v (must be bit-identical)", n, i, a[i], b[i])
			}
		}
	}
}

func TestRestoreFlatRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	n := 60
	_, dist := euclid2D(rng, n)
	tr := buildTestTree(t, dist, n, 13)
	fresh := func() *Flat {
		return tr.Flatten()
	}
	cases := []struct {
		name   string
		mutate func(f *Flat)
	}{
		{"object out of range", func(f *Flat) { f.Nodes[0].Entries[0].Object = int32(n) }},
		{"negative radius", func(f *Flat) { f.Nodes[0].Entries[0].Radius = -1 }},
		{"nan radius", func(f *Flat) { f.Nodes[0].Entries[0].Radius = math.NaN() }},
		{"size mismatch", func(f *Flat) { f.Size++ }},
		{"capacity too small", func(f *Flat) { f.Capacity = 1 }},
		{"child self-loop", func(f *Flat) {
			for i := range f.Nodes {
				for j := range f.Nodes[i].Entries {
					if f.Nodes[i].Entries[j].Child >= 0 {
						f.Nodes[i].Entries[j].Child = 0
						return
					}
				}
			}
		}},
		{"no nodes", func(f *Flat) { f.Nodes = nil }},
	}
	for _, c := range cases {
		f := fresh()
		c.mutate(f)
		if _, err := RestoreFlat(f, n, rand.New(rand.NewSource(1))); err == nil {
			t.Errorf("%s: RestoreFlat accepted corrupted input", c.name)
		}
	}
	if _, err := RestoreFlat(fresh(), n, rand.New(rand.NewSource(1))); err != nil {
		t.Fatalf("unmutated flat rejected: %v", err)
	}
}

// TestCloneInsertExtends: cloning a restored tree and inserting new
// ids yields the same answers as querying all ids — the engine's
// incremental index maintenance path.
func TestCloneInsertExtends(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	total := 150
	pts, dist := euclid2D(rng, total)
	n0 := 100
	tr := buildTestTree(t, dist, n0, 17)
	re, err := RestoreFlat(tr.Flatten(), n0, rand.New(rand.NewSource(18)))
	if err != nil {
		t.Fatalf("RestoreFlat: %v", err)
	}
	cl, err := re.Clone(dist, rand.New(rand.NewSource(19)))
	if err != nil {
		t.Fatalf("Clone: %v", err)
	}
	for i := n0; i < total; i++ {
		cl.Insert(i)
	}
	if cl.Len() != total {
		t.Fatalf("Len = %d, want %d", cl.Len(), total)
	}
	q := [2]float64{2, 8}
	qdist := func(i int) float64 {
		return math.Hypot(q[0]-pts[i][0], q[1]-pts[i][1])
	}
	got := drainStream(t, cl.Stream(qdist, nil))
	if len(got) != total {
		t.Fatalf("%d emissions, want %d", len(got), total)
	}
	prevIdx := make(map[int]bool)
	for _, r := range got {
		if prevIdx[r.Index] {
			t.Fatalf("index %d emitted twice", r.Index)
		}
		prevIdx[r.Index] = true
		if math.Abs(r.Dist-qdist(r.Index)) > 1e-9 {
			t.Fatalf("index %d: Dist %g, want %g", r.Index, r.Dist, qdist(r.Index))
		}
	}
}
