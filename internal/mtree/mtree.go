// Package mtree implements the M-tree, the dynamic metric access
// method of Ciaccia, Patella and Zezula that the multimedia-database
// community (including the paper's group) used as the standard
// disk-oriented index for expensive metric distances such as the EMD.
// Unlike the static VP-tree in internal/vptree, the M-tree is built by
// successive insertion and answers k-NN queries best-first with a
// priority queue over covering-radius lower bounds, pruning via the
// triangle inequality both against routing objects and against the
// stored parent distances.
//
// Within this repository the M-tree serves as a second, independently
// implemented metric baseline for the Fig23-style comparisons and as a
// substrate for exact EMD search when insertions must be dynamic.
package mtree

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"emdsearch/internal/heapx"
)

// DistFunc is the metric between two indexed objects.
type DistFunc func(i, j int) float64

// QueryDistFunc is the metric between the query and object i.
type QueryDistFunc func(i int) float64

// Tree is an M-tree over integer object ids.
type Tree struct {
	dist     DistFunc
	capacity int
	root     *node
	size     int
	nodes    int // total node count, for pruning statistics
	rng      *rand.Rand
	// DistanceCalls counts metric evaluations during construction.
	DistanceCalls int
}

// entry is one slot of a node: a leaf entry (child == nil) holds an
// object; a routing entry holds a routing object, a covering radius
// and a subtree.
type entry struct {
	object  int
	distPar float64 // distance to the parent routing object
	radius  float64 // covering radius (routing entries only)
	child   *node
}

type node struct {
	leaf    bool
	parent  *node
	entries []entry
}

// New creates an empty M-tree with the given node capacity (minimum
// 4). rng drives the split promotion choice.
func New(dist DistFunc, capacity int, rng *rand.Rand) (*Tree, error) {
	if dist == nil {
		return nil, fmt.Errorf("mtree: nil distance")
	}
	if capacity < 4 {
		return nil, fmt.Errorf("mtree: capacity %d, want >= 4", capacity)
	}
	if rng == nil {
		return nil, fmt.Errorf("mtree: nil rng")
	}
	return &Tree{
		dist:     dist,
		capacity: capacity,
		root:     &node{leaf: true},
		nodes:    1,
		rng:      rng,
	}, nil
}

// Len returns the number of indexed objects.
func (t *Tree) Len() int { return t.size }

// Nodes returns the total number of tree nodes — the denominator of
// the "subtrees pruned" statistic a best-first traversal reports.
func (t *Tree) Nodes() int { return t.nodes }

func (t *Tree) d(i, j int) float64 {
	t.DistanceCalls++
	return t.dist(i, j)
}

// Insert adds object id to the tree.
func (t *Tree) Insert(id int) {
	t.insertAt(t.root, id, math.NaN())
	t.size++
}

// insertAt descends from n to the best leaf and inserts; distToParent
// is the (already computed) distance of id to n's routing object, or
// NaN at the root.
func (t *Tree) insertAt(n *node, id int, distToParent float64) {
	if n.leaf {
		n.entries = append(n.entries, entry{object: id, distPar: distToParent})
		if len(n.entries) > t.capacity {
			t.split(n)
		}
		return
	}
	// Choose the routing entry: prefer one whose covering ball already
	// contains the object (minimum distance); otherwise the one whose
	// radius grows least.
	bestIdx := -1
	bestDist := math.Inf(1)
	covered := false
	dists := make([]float64, len(n.entries))
	for i := range n.entries {
		dists[i] = t.d(id, n.entries[i].object)
		inside := dists[i] <= n.entries[i].radius
		switch {
		case inside && (!covered || dists[i] < bestDist):
			covered = true
			bestIdx, bestDist = i, dists[i]
		case !covered && !inside:
			if enlarge := dists[i] - n.entries[i].radius; bestIdx < 0 || enlarge < bestDist-getRadius(n, bestIdx) {
				bestIdx, bestDist = i, dists[i]
			}
		}
	}
	e := &n.entries[bestIdx]
	if dists[bestIdx] > e.radius {
		e.radius = dists[bestIdx]
	}
	t.insertAt(e.child, id, dists[bestIdx])
}

func getRadius(n *node, i int) float64 {
	if i < 0 {
		return math.Inf(1)
	}
	return n.entries[i].radius
}

// split handles node overflow: two promoted routing objects partition
// the entries (generalized hyperplane), and the parents are updated,
// growing the tree at the root if needed.
func (t *Tree) split(n *node) {
	entries := n.entries
	// Promotion: sample a few random pairs and keep the pair whose
	// larger covering radius is smallest (a cheap approximation of the
	// mM_RAD policy).
	bestA, bestB := 0, 1
	bestScore := math.Inf(1)
	trials := 5
	for trial := 0; trial < trials; trial++ {
		a := t.rng.Intn(len(entries))
		b := t.rng.Intn(len(entries))
		if a == b {
			continue
		}
		ra, rb := t.partitionScore(entries, a, b)
		if s := math.Max(ra, rb); s < bestScore {
			bestScore = s
			bestA, bestB = a, b
		}
	}

	objA := entries[bestA].object
	objB := entries[bestB].object
	nodeA := &node{leaf: n.leaf}
	nodeB := &node{leaf: n.leaf}
	t.nodes++ // n is replaced by nodeA and nodeB: net one new node
	var radA, radB float64
	for _, e := range entries {
		da := t.d(e.object, objA)
		db := t.d(e.object, objB)
		sub := e
		if da <= db {
			sub.distPar = da
			nodeA.entries = append(nodeA.entries, sub)
			if r := da + sub.radius; r > radA {
				radA = r
			}
			if sub.child != nil {
				sub.child.parent = nodeA
			}
		} else {
			sub.distPar = db
			nodeB.entries = append(nodeB.entries, sub)
			if r := db + sub.radius; r > radB {
				radB = r
			}
			if sub.child != nil {
				sub.child.parent = nodeB
			}
		}
	}
	// Re-point children (value copies above kept the same *node
	// pointers, so fix parents).
	for i := range nodeA.entries {
		if nodeA.entries[i].child != nil {
			nodeA.entries[i].child.parent = nodeA
		}
	}
	for i := range nodeB.entries {
		if nodeB.entries[i].child != nil {
			nodeB.entries[i].child.parent = nodeB
		}
	}

	entryA := entry{object: objA, radius: radA, child: nodeA}
	entryB := entry{object: objB, radius: radB, child: nodeB}

	parent := n.parent
	if parent == nil {
		// Root split: grow the tree.
		root := &node{leaf: false}
		t.nodes++
		entryA.distPar = math.NaN()
		entryB.distPar = math.NaN()
		root.entries = []entry{entryA, entryB}
		nodeA.parent = root
		nodeB.parent = root
		t.root = root
		return
	}
	// Replace n's entry in the parent with entryA, append entryB. The
	// promoted objects' distances to the parent's routing object are
	// not recomputed (distPar is informational in this implementation;
	// pruning relies on covering radii only).
	for i := range parent.entries {
		if parent.entries[i].child == n {
			entryA.distPar = math.NaN()
			entryB.distPar = math.NaN()
			parent.entries[i] = entryA
			parent.entries = append(parent.entries, entryB)
			nodeA.parent = parent
			nodeB.parent = parent
			break
		}
	}
	if len(parent.entries) > t.capacity {
		t.split(parent)
	}
}

// partitionScore estimates the two covering radii when promoting
// entries a and b.
func (t *Tree) partitionScore(entries []entry, a, b int) (float64, float64) {
	var ra, rb float64
	for i := range entries {
		da := t.d(entries[i].object, entries[a].object) + entries[i].radius
		db := t.d(entries[i].object, entries[b].object) + entries[i].radius
		if da <= db {
			if da > ra {
				ra = da
			}
		} else {
			if db > rb {
				rb = db
			}
		}
	}
	return ra, rb
}

// Result is one query answer.
type Result struct {
	Index int
	Dist  float64
}

// Stats reports query work.
type Stats struct {
	DistanceCalls int
	NodesVisited  int
}

// pqItem is a priority-queue element: a subtree with a lower-bound
// distance.
type pqItem struct {
	node *node
	dmin float64
}

// newResultHeap returns a typed max-heap on Dist for keeping the k
// closest results (furthest on top).
func newResultHeap(k int) *heapx.Heap[Result] {
	return heapx.New(k+1, func(a, b Result) bool { return a.Dist > b.Dist })
}

// KNN returns the k nearest objects to the query, exactly, using
// best-first search over covering-radius lower bounds.
func (t *Tree) KNN(qdist QueryDistFunc, k int) ([]Result, *Stats, error) {
	if k < 1 {
		return nil, nil, fmt.Errorf("mtree: k = %d, want >= 1", k)
	}
	stats := &Stats{}
	best := newResultHeap(k)
	tau := func() float64 {
		if best.Len() < k {
			return math.Inf(1)
		}
		return best.Peek().Dist
	}
	add := func(idx int, d float64) {
		best.Push(Result{Index: idx, Dist: d})
		if best.Len() > k {
			best.Pop()
		}
	}

	queue := heapx.New[pqItem](16, func(a, b pqItem) bool { return a.dmin < b.dmin })
	queue.Push(pqItem{node: t.root})
	for queue.Len() > 0 {
		it := queue.Pop()
		if it.dmin > tau() {
			break // every remaining subtree is further away
		}
		stats.NodesVisited++
		n := it.node
		if n.leaf {
			for i := range n.entries {
				stats.DistanceCalls++
				d := qdist(n.entries[i].object)
				if d <= tau() {
					add(n.entries[i].object, d)
				}
			}
			continue
		}
		for i := range n.entries {
			e := &n.entries[i]
			stats.DistanceCalls++
			d := qdist(e.object)
			// Routing objects are copies of objects stored in some
			// leaf below; they are only used for pruning here and are
			// reported when their leaf is reached (the covering-radius
			// invariant guarantees that leaf is never pruned while the
			// object still qualifies).
			if dmin := d - e.radius; dmin <= tau() {
				if dmin < 0 {
					dmin = 0
				}
				queue.Push(pqItem{node: e.child, dmin: dmin})
			}
		}
	}

	out := make([]Result, 0, best.Len())
	for best.Len() > 0 {
		out = append(out, best.Pop())
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].Index < out[j].Index
	})
	return out, stats, nil
}

// Range returns all objects within eps of the query, exactly.
func (t *Tree) Range(qdist QueryDistFunc, eps float64) ([]Result, *Stats, error) {
	if eps < 0 {
		return nil, nil, fmt.Errorf("mtree: eps = %g, want >= 0", eps)
	}
	stats := &Stats{}
	var out []Result
	var visit func(n *node)
	visit = func(n *node) {
		stats.NodesVisited++
		for i := range n.entries {
			e := &n.entries[i]
			stats.DistanceCalls++
			d := qdist(e.object)
			if n.leaf {
				if d <= eps {
					out = append(out, Result{Index: e.object, Dist: d})
				}
				continue
			}
			if d <= eps {
				out = append(out, Result{Index: e.object, Dist: d})
			}
			if d-e.radius <= eps {
				visit(e.child)
			}
		}
	}
	visit(t.root)
	// Routing objects also live in the leaves? No: in this
	// implementation every object is inserted exactly once into a
	// leaf; routing objects are *copies* of leaf objects, so the
	// traversal above would double-count them. Deduplicate by id.
	sort.Slice(out, func(i, j int) bool {
		if out[i].Index != out[j].Index {
			return out[i].Index < out[j].Index
		}
		return out[i].Dist < out[j].Dist
	})
	dedup := out[:0]
	for i, r := range out {
		if i == 0 || r.Index != out[i-1].Index {
			dedup = append(dedup, r)
		}
	}
	out = dedup
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].Index < out[j].Index
	})
	return out, stats, nil
}
