package mtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"emdsearch/internal/emd"
	"emdsearch/internal/vecmath"
)

func fixture(n int, seed int64) ([][]float64, DistFunc) {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = []float64{rng.Float64() * 10, rng.Float64() * 10}
	}
	return pts, func(i, j int) float64 { return vecmath.L2(pts[i], pts[j]) }
}

func buildTree(t *testing.T, n int, capacity int, seed int64) ([][]float64, *Tree) {
	t.Helper()
	pts, dist := fixture(n, seed)
	tree, err := New(dist, capacity, rand.New(rand.NewSource(seed+1)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		tree.Insert(i)
	}
	return pts, tree
}

func bruteKNN(pts [][]float64, q []float64, k int) []Result {
	all := make([]Result, len(pts))
	for i := range pts {
		all[i] = Result{Index: i, Dist: vecmath.L2(q, pts[i])}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Dist != all[j].Dist {
			return all[i].Dist < all[j].Dist
		}
		return all[i].Index < all[j].Index
	})
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

func TestNewValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := New(nil, 8, rng); err == nil {
		t.Error("accepted nil distance")
	}
	if _, err := New(func(i, j int) float64 { return 0 }, 2, rng); err == nil {
		t.Error("accepted capacity < 4")
	}
	if _, err := New(func(i, j int) float64 { return 0 }, 8, nil); err == nil {
		t.Error("accepted nil rng")
	}
}

func TestKNNMatchesBruteForce(t *testing.T) {
	pts, tree := buildTree(t, 600, 8, 3)
	if tree.Len() != 600 {
		t.Fatalf("Len = %d", tree.Len())
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		q := []float64{rng.Float64() * 10, rng.Float64() * 10}
		qd := func(i int) float64 { return vecmath.L2(q, pts[i]) }
		for _, k := range []int{1, 4, 15} {
			got, stats, err := tree.KNN(qd, k)
			if err != nil {
				t.Fatal(err)
			}
			want := bruteKNN(pts, q, k)
			if len(got) != len(want) {
				t.Fatalf("k=%d: %d results, want %d", k, len(got), len(want))
			}
			for i := range want {
				if got[i].Index != want[i].Index || math.Abs(got[i].Dist-want[i].Dist) > 1e-12 {
					t.Fatalf("k=%d result %d: got %+v, want %+v", k, i, got[i], want[i])
				}
			}
			if stats.DistanceCalls > 3*len(pts) {
				t.Errorf("excessive distance calls: %d for %d points", stats.DistanceCalls, len(pts))
			}
		}
	}
}

func TestKNNNoDuplicates(t *testing.T) {
	pts, tree := buildTree(t, 300, 6, 7)
	q := []float64{5, 5}
	got, _, err := tree.KNN(func(i int) float64 { return vecmath.L2(q, pts[i]) }, 20)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, r := range got {
		if seen[r.Index] {
			t.Fatalf("duplicate result index %d", r.Index)
		}
		seen[r.Index] = true
	}
}

func TestRangeMatchesBruteForce(t *testing.T) {
	pts, tree := buildTree(t, 400, 8, 11)
	q := []float64{2, 8}
	qd := func(i int) float64 { return vecmath.L2(q, pts[i]) }
	for _, eps := range []float64{0, 1, 3, 20} {
		got, _, err := tree.Range(qd, eps)
		if err != nil {
			t.Fatal(err)
		}
		var want []Result
		for i := range pts {
			if d := qd(i); d <= eps {
				want = append(want, Result{Index: i, Dist: d})
			}
		}
		sort.Slice(want, func(i, j int) bool {
			if want[i].Dist != want[j].Dist {
				return want[i].Dist < want[j].Dist
			}
			return want[i].Index < want[j].Index
		})
		if len(got) != len(want) {
			t.Fatalf("eps=%g: %d results, want %d", eps, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("eps=%g result %d: got %+v, want %+v", eps, i, got[i], want[i])
			}
		}
	}
}

func TestQueryValidation(t *testing.T) {
	_, tree := buildTree(t, 20, 4, 1)
	if _, _, err := tree.KNN(func(int) float64 { return 0 }, 0); err == nil {
		t.Error("accepted k=0")
	}
	if _, _, err := tree.Range(func(int) float64 { return 0 }, -1); err == nil {
		t.Error("accepted negative eps")
	}
}

func TestPrunesOnLowDimensionalData(t *testing.T) {
	pts, tree := buildTree(t, 3000, 12, 13)
	q := []float64{5, 5}
	_, stats, err := tree.KNN(func(i int) float64 { return vecmath.L2(q, pts[i]) }, 5)
	if err != nil {
		t.Fatal(err)
	}
	if stats.DistanceCalls > len(pts) {
		t.Errorf("2-D M-tree evaluated %d distances for %d points; expected pruning", stats.DistanceCalls, len(pts))
	}
}

func TestSmallTreesAllSizes(t *testing.T) {
	// Exactness across the split boundary sizes.
	for n := 1; n <= 40; n++ {
		pts, tree := buildTree(t, n, 4, int64(n))
		q := []float64{1, 1}
		got, _, err := tree.KNN(func(i int) float64 { return vecmath.L2(q, pts[i]) }, 3)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteKNN(pts, q, 3)
		if len(got) != len(want) {
			t.Fatalf("n=%d: %d results, want %d", n, len(got), len(want))
		}
		for i := range want {
			if got[i].Index != want[i].Index {
				t.Fatalf("n=%d result %d: got %+v, want %+v", n, i, got[i], want[i])
			}
		}
	}
}

// TestEMDMTree: exactness over the Earth Mover's Distance, the
// intended use in this repository.
func TestEMDMTree(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const d, n = 8, 150
	dist, err := emd.NewDist(emd.LinearCost(d))
	if err != nil {
		t.Fatal(err)
	}
	hists := make([]emd.Histogram, n)
	for i := range hists {
		h := make(emd.Histogram, d)
		for b := range h {
			h[b] = rng.Float64()
		}
		hists[i] = vecmath.Normalize(h)
	}
	tree, err := New(func(i, j int) float64 { return dist.Distance(hists[i], hists[j]) }, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		tree.Insert(i)
	}
	q := hists[42]
	qd := func(i int) float64 { return dist.Distance(q, hists[i]) }
	got, _, err := tree.KNN(qd, 6)
	if err != nil {
		t.Fatal(err)
	}
	all := make([]Result, n)
	for i := range all {
		all[i] = Result{Index: i, Dist: qd(i)}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Dist != all[j].Dist {
			return all[i].Dist < all[j].Dist
		}
		return all[i].Index < all[j].Index
	})
	for i := 0; i < 6; i++ {
		if got[i].Index != all[i].Index {
			t.Fatalf("EMD M-tree result %d: got %+v, want %+v", i, got[i], all[i])
		}
	}
}
