package mtree

import (
	"fmt"
	"math"
	"math/rand"
)

// Clone returns a structural deep copy of the tree bound to a new
// distance function and rng, without evaluating any distances. The
// engine uses it to re-attach a persisted or stashed tree to the
// current snapshot's data before inserting new objects.
func (t *Tree) Clone(dist DistFunc, rng *rand.Rand) (*Tree, error) {
	if dist == nil {
		return nil, fmt.Errorf("mtree: nil distance")
	}
	if rng == nil {
		return nil, fmt.Errorf("mtree: nil rng")
	}
	nt := &Tree{dist: dist, capacity: t.capacity, size: t.size, nodes: t.nodes, rng: rng}
	nt.root = cloneNode(t.root, nil)
	return nt, nil
}

func cloneNode(n *node, parent *node) *node {
	c := &node{leaf: n.leaf, parent: parent, entries: make([]entry, len(n.entries))}
	copy(c.entries, n.entries)
	for i := range c.entries {
		if child := c.entries[i].child; child != nil {
			c.entries[i].child = cloneNode(child, c)
		}
	}
	return c
}

// Flat is the tree's serializable form: nodes in preorder, children
// addressed by index. It contains object ids and stored distances only
// — restoring needs the same object set and metric to be meaningful,
// which the engine enforces with a content fingerprint.
type Flat struct {
	Capacity int
	Size     int
	Nodes    []FlatNode
}

// FlatNode is one serialized node.
type FlatNode struct {
	Leaf    bool
	Entries []FlatEntry
}

// FlatEntry is one serialized entry. Child is the index of the subtree
// node for routing entries and -1 for leaf entries.
type FlatEntry struct {
	Object  int32
	DistPar float64
	Radius  float64
	Child   int32
}

// Flatten serializes the tree structure.
func (t *Tree) Flatten() *Flat {
	f := &Flat{Capacity: t.capacity, Size: t.size}
	var walk func(n *node) int32
	walk = func(n *node) int32 {
		idx := int32(len(f.Nodes))
		f.Nodes = append(f.Nodes, FlatNode{Leaf: n.leaf})
		entries := make([]FlatEntry, len(n.entries))
		for i := range n.entries {
			e := &n.entries[i]
			fe := FlatEntry{Object: int32(e.object), DistPar: e.distPar, Radius: e.radius, Child: -1}
			if e.child != nil {
				fe.Child = walk(e.child)
			}
			entries[i] = fe
		}
		f.Nodes[idx].Entries = entries
		return idx
	}
	walk(t.root)
	return f
}

// RestoreFlat rebuilds a tree from its serialized form after strict
// structural validation, for object ids in [0, n). The restored tree
// answers queries but has no distance function: call Clone before
// Insert. Validation failures indicate corruption or a version skew
// the snapshot layer's checksums missed, never a query-time panic.
func RestoreFlat(f *Flat, n int, rng *rand.Rand) (*Tree, error) {
	if rng == nil {
		return nil, fmt.Errorf("mtree: nil rng")
	}
	if f == nil || len(f.Nodes) == 0 {
		return nil, fmt.Errorf("mtree: flat form has no nodes")
	}
	if f.Capacity < 4 {
		return nil, fmt.Errorf("mtree: flat capacity %d, want >= 4", f.Capacity)
	}
	if f.Size < 0 || f.Size > n {
		return nil, fmt.Errorf("mtree: flat size %d out of range [0, %d]", f.Size, n)
	}
	nodes := make([]*node, len(f.Nodes))
	for i := range nodes {
		nodes[i] = &node{leaf: f.Nodes[i].Leaf}
	}
	refs := make([]int, len(f.Nodes))
	leafEntries := 0
	for i, fn := range f.Nodes {
		if !fn.Leaf && len(fn.Entries) == 0 {
			return nil, fmt.Errorf("mtree: internal node %d has no entries", i)
		}
		for j, e := range fn.Entries {
			if e.Object < 0 || int(e.Object) >= n {
				return nil, fmt.Errorf("mtree: node %d entry %d: object %d out of range [0, %d)", i, j, e.Object, n)
			}
			if math.IsInf(e.DistPar, 0) || (!math.IsNaN(e.DistPar) && e.DistPar < 0) {
				return nil, fmt.Errorf("mtree: node %d entry %d: invalid parent distance %g", i, j, e.DistPar)
			}
			if math.IsNaN(e.Radius) || math.IsInf(e.Radius, 0) || e.Radius < 0 {
				return nil, fmt.Errorf("mtree: node %d entry %d: invalid radius %g", i, j, e.Radius)
			}
			ne := entry{object: int(e.Object), distPar: e.DistPar, radius: e.Radius}
			if fn.Leaf {
				if e.Child != -1 {
					return nil, fmt.Errorf("mtree: node %d entry %d: leaf entry has child %d", i, j, e.Child)
				}
				leafEntries++
			} else {
				if int(e.Child) <= i || int(e.Child) >= len(f.Nodes) {
					return nil, fmt.Errorf("mtree: node %d entry %d: child %d violates preorder", i, j, e.Child)
				}
				refs[e.Child]++
				ne.child = nodes[e.Child]
				nodes[e.Child].parent = nodes[i]
			}
			nodes[i].entries = append(nodes[i].entries, ne)
		}
	}
	for i := 1; i < len(refs); i++ {
		if refs[i] != 1 {
			return nil, fmt.Errorf("mtree: node %d referenced %d times, want 1", i, refs[i])
		}
	}
	if leafEntries != f.Size {
		return nil, fmt.Errorf("mtree: flat size %d, but %d leaf entries", f.Size, leafEntries)
	}
	return &Tree{capacity: f.Capacity, root: nodes[0], size: f.Size, nodes: len(f.Nodes), rng: rng}, nil
}
