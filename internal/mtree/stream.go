package mtree

import (
	"math"

	"emdsearch/internal/heapx"
)

// Frame kinds of the best-first stream, in heap tie-break order: nodes
// expand before items emit at equal keys, so candidate items enter the
// heap before ties are resolved.
const (
	frameNode         int8 = iota // subtree, routing-object distance known
	frameNodeDeferred             // subtree, routing-object distance pending
	frameItemUneval               // leaf object, query distance pending
	frameItemEval                 // leaf object, query distance known
)

// frame is one element of the stream's priority queue. key is a
// certified lower bound on the query distance of everything beneath
// the frame; it is nondecreasing along every root-to-frame chain.
type frame struct {
	key    float64
	kind   int8
	idx    int32   // object id (item and deferred-node frames)
	node   *node   // subtree (node frames)
	dqr    float64 // d(query, routing object) for frameNode, NaN at root
	radius float64 // covering radius (frameNodeDeferred)
}

// Stream is an incremental best-first traversal emitting indexed
// objects in nondecreasing distance order. It is the index-as-filter
// primitive: a consumer that stops after k results (or past a
// threshold) pays only for the subtrees whose lower bounds qualify,
// while the emission order makes early termination provably lossless.
//
// A Stream must not outlive the Tree it came from and is not safe for
// concurrent use; the Tree itself is not mutated and can serve many
// Streams.
type Stream struct {
	t     *Tree
	qdist QueryDistFunc
	skip  func(id int) bool
	heap  *heapx.Heap[frame]
	memo  map[int32]float64
	stats Stats
}

// Stream starts a best-first traversal for the query described by
// qdist. skip, when non-nil, filters objects (e.g. soft deletes) at
// emission time — skipped objects cost no distance evaluation.
func (t *Tree) Stream(qdist QueryDistFunc, skip func(id int) bool) *Stream {
	s := &Stream{
		t:     t,
		qdist: qdist,
		skip:  skip,
		heap: heapx.New(64, func(a, b frame) bool {
			if a.key != b.key {
				return a.key < b.key
			}
			if a.kind != b.kind {
				return a.kind < b.kind
			}
			return a.idx < b.idx
		}),
		memo: make(map[int32]float64),
	}
	s.heap.Push(frame{kind: frameNode, node: t.root, dqr: math.NaN()})
	return s
}

// Result is one emission; Stats reports the traversal work so far.
func (s *Stream) Stats() Stats { return s.stats }

// qd evaluates the query distance to object id, memoized: routing
// objects are copies of leaf objects, so the same id can surface in
// several frames but is solved once.
func (s *Stream) qd(id int32) float64 {
	if d, ok := s.memo[id]; ok {
		return d
	}
	s.stats.DistanceCalls++
	d := s.qdist(int(id))
	s.memo[id] = d
	return d
}

// expand pushes the children of a node whose routing-object distance
// dqr is known (NaN at the root, which has no routing object). Leaf
// entries become deferred items bounded by |dqr - distPar|; routing
// entries become deferred nodes bounded by |dqr - distPar| - radius —
// both without any distance evaluation, per the M-tree's stored
// parent-distance optimization.
func (s *Stream) expand(n *node, dqr, key float64) {
	s.stats.NodesVisited++
	if n.leaf {
		for i := range n.entries {
			e := &n.entries[i]
			k := key
			if !math.IsNaN(dqr) && !math.IsNaN(e.distPar) {
				if b := math.Abs(dqr - e.distPar); b > k {
					k = b
				}
			}
			s.heap.Push(frame{key: k, kind: frameItemUneval, idx: int32(e.object)})
		}
		return
	}
	for i := range n.entries {
		e := &n.entries[i]
		k := key
		if !math.IsNaN(dqr) && !math.IsNaN(e.distPar) {
			if b := math.Abs(dqr-e.distPar) - e.radius; b > k {
				k = b
			}
		}
		s.heap.Push(frame{key: k, kind: frameNodeDeferred, idx: int32(e.object), node: e.child, radius: e.radius})
	}
}

// Next returns the next object in nondecreasing lower-bound order, or
// ok = false when the tree is exhausted. The emitted Dist is the exact
// index metric distance (never less than any earlier emission), so a
// consumer may stop as soon as it exceeds its search threshold without
// losing any qualifying object.
func (s *Stream) Next() (Result, bool) {
	h := s.heap
	for h.Len() > 0 {
		f := h.Pop()
		switch f.kind {
		case frameNode:
			s.expand(f.node, f.dqr, f.key)
		case frameNodeDeferred:
			// Deferred evaluation: only now pay for the routing-object
			// distance, and re-queue rather than expand if the sharpened
			// bound no longer wins.
			d := s.qd(f.idx)
			key := f.key
			if k := d - f.radius; k > key {
				key = k
			}
			if h.Len() > 0 && key > h.Peek().key {
				h.Push(frame{key: key, kind: frameNode, idx: f.idx, node: f.node, dqr: d})
				continue
			}
			s.expand(f.node, d, key)
		case frameItemUneval:
			id := int(f.idx)
			if s.skip != nil && s.skip(id) {
				continue
			}
			d := s.qd(f.idx)
			if f.key > d {
				d = f.key // float slack only; keeps emissions monotone
			}
			if h.Len() == 0 || d <= h.Peek().key {
				return Result{Index: id, Dist: d}, true
			}
			h.Push(frame{key: d, kind: frameItemEval, idx: f.idx})
		case frameItemEval:
			return Result{Index: int(f.idx), Dist: f.key}, true
		}
	}
	return Result{}, false
}
