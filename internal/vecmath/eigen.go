package vecmath

import (
	"fmt"
	"math"
	"sort"
)

// JacobiEigen computes the eigendecomposition of a symmetric matrix a
// using the cyclic Jacobi rotation method. It returns the eigenvalues
// in descending order and the corresponding eigenvectors as rows of the
// returned matrix. The input is not modified.
//
// The method is O(d^3) per sweep and converges quadratically; it is
// entirely sufficient for the covariance matrices of the PCA ablation
// (d <= a few hundred) and avoids any dependency outside the standard
// library.
func JacobiEigen(a [][]float64) (values []float64, vectors [][]float64, err error) {
	n := len(a)
	for i, row := range a {
		if len(row) != n {
			return nil, nil, fmt.Errorf("vecmath: JacobiEigen requires a square matrix, row %d has %d columns for size %d", i, len(row), n)
		}
		for j := 0; j < n; j++ {
			if !AlmostEqual(a[i][j], a[j][i], 1e-9) {
				return nil, nil, fmt.Errorf("vecmath: JacobiEigen requires a symmetric matrix, a[%d][%d]=%g a[%d][%d]=%g", i, j, a[i][j], j, i, a[j][i])
			}
		}
	}
	if n == 0 {
		return nil, nil, nil
	}

	m := CloneMatrix(a)
	// v starts as the identity and accumulates the rotations; its
	// columns are the eigenvectors of a.
	v := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		v[i][i] = 1
	}

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagonalNorm(m)
		if off < 1e-14 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				if math.Abs(m[p][q]) < 1e-18 {
					continue
				}
				rotate(m, v, p, q)
			}
		}
		if sweep == maxSweeps-1 && offDiagonalNorm(m) > 1e-8 {
			return nil, nil, fmt.Errorf("vecmath: JacobiEigen did not converge after %d sweeps (off-diagonal norm %g)", maxSweeps, offDiagonalNorm(m))
		}
	}

	// Extract eigenpairs and sort by descending eigenvalue.
	type pair struct {
		value  float64
		vector []float64
	}
	pairs := make([]pair, n)
	for i := 0; i < n; i++ {
		vec := make([]float64, n)
		for r := 0; r < n; r++ {
			vec[r] = v[r][i]
		}
		pairs[i] = pair{value: m[i][i], vector: vec}
	}
	sort.SliceStable(pairs, func(i, j int) bool { return pairs[i].value > pairs[j].value })

	values = make([]float64, n)
	vectors = make([][]float64, n)
	for i, p := range pairs {
		values[i] = p.value
		vectors[i] = p.vector
	}
	return values, vectors, nil
}

// offDiagonalNorm returns the Frobenius norm of the strictly upper
// triangle of m.
func offDiagonalNorm(m [][]float64) float64 {
	var sum float64
	n := len(m)
	for i := 0; i < n-1; i++ {
		for j := i + 1; j < n; j++ {
			sum += m[i][j] * m[i][j]
		}
	}
	return math.Sqrt(sum)
}

// rotate applies one Jacobi rotation eliminating m[p][q], updating the
// accumulated eigenvector matrix v alongside.
func rotate(m, v [][]float64, p, q int) {
	n := len(m)
	apq := m[p][q]
	theta := (m[q][q] - m[p][p]) / (2 * apq)
	var t float64
	if theta >= 0 {
		t = 1 / (theta + math.Sqrt(1+theta*theta))
	} else {
		t = -1 / (-theta + math.Sqrt(1+theta*theta))
	}
	c := 1 / math.Sqrt(1+t*t)
	s := t * c

	for k := 0; k < n; k++ {
		mkp, mkq := m[k][p], m[k][q]
		m[k][p] = c*mkp - s*mkq
		m[k][q] = s*mkp + c*mkq
	}
	for k := 0; k < n; k++ {
		mpk, mqk := m[p][k], m[q][k]
		m[p][k] = c*mpk - s*mqk
		m[q][k] = s*mpk + c*mqk
	}
	for k := 0; k < n; k++ {
		vkp, vkq := v[k][p], v[k][q]
		v[k][p] = c*vkp - s*vkq
		v[k][q] = s*vkp + c*vkq
	}
}

// Covariance returns the sample covariance matrix of the given row
// vectors (observations in rows, variables in columns).
func Covariance(rows [][]float64) ([][]float64, error) {
	if len(rows) < 2 {
		return nil, fmt.Errorf("vecmath: Covariance requires at least 2 observations, got %d", len(rows))
	}
	d := len(rows[0])
	for i, r := range rows {
		if len(r) != d {
			return nil, fmt.Errorf("vecmath: Covariance row %d has %d columns, want %d", i, len(r), d)
		}
	}
	mean := make([]float64, d)
	for _, r := range rows {
		for j, x := range r {
			mean[j] += x
		}
	}
	Scale(mean, 1/float64(len(rows)))

	cov := NewMatrix(d, d)
	for _, r := range rows {
		for i := 0; i < d; i++ {
			di := r[i] - mean[i]
			if di == 0 {
				continue
			}
			for j := i; j < d; j++ {
				cov[i][j] += di * (r[j] - mean[j])
			}
		}
	}
	norm := 1 / float64(len(rows)-1)
	for i := 0; i < d; i++ {
		for j := i; j < d; j++ {
			cov[i][j] *= norm
			cov[j][i] = cov[i][j]
		}
	}
	return cov, nil
}
