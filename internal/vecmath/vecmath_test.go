package vecmath

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSumCompensated(t *testing.T) {
	// Kahan summation keeps a long sum of small values exact enough.
	xs := make([]float64, 1_000_000)
	for i := range xs {
		xs[i] = 0.1
	}
	if got := Sum(xs); math.Abs(got-100000) > 1e-6 {
		t.Errorf("Sum = %.12f, want 100000", got)
	}
	if Sum(nil) != 0 {
		t.Error("Sum(nil) != 0")
	}
}

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Errorf("Dot = %g, want 32", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Dot length mismatch did not panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestNorms(t *testing.T) {
	a := []float64{0, 0}
	b := []float64{3, 4}
	if got := L1(a, b); got != 7 {
		t.Errorf("L1 = %g, want 7", got)
	}
	if got := L2(a, b); got != 5 {
		t.Errorf("L2 = %g, want 5", got)
	}
	if got := Lp(a, b, 1); got != 7 {
		t.Errorf("Lp(1) = %g, want 7", got)
	}
	if got := Lp(a, b, 2); math.Abs(got-5) > 1e-12 {
		t.Errorf("Lp(2) = %g, want 5", got)
	}
	if got := Lp(a, b, 3); math.Abs(got-math.Pow(27+64, 1.0/3)) > 1e-12 {
		t.Errorf("Lp(3) = %g", got)
	}
}

func TestQuickLpTriangle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		a := make([]float64, n)
		b := make([]float64, n)
		c := make([]float64, n)
		for i := 0; i < n; i++ {
			a[i], b[i], c[i] = rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
		}
		for _, p := range []float64{1, 2, 3} {
			if Lp(a, b, p) > Lp(a, c, p)+Lp(c, b, p)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalize(t *testing.T) {
	xs := []float64{2, 2, 4}
	Normalize(xs)
	if math.Abs(Sum(xs)-1) > 1e-12 || xs[2] != 0.5 {
		t.Errorf("Normalize = %v", xs)
	}
	defer func() {
		if recover() == nil {
			t.Error("Normalize of zero mass did not panic")
		}
	}()
	Normalize([]float64{0, 0})
}

func TestMatVec(t *testing.T) {
	m := [][]float64{{1, 0}, {0, 1}, {1, 1}}
	got := MatVec([]float64{2, 3, 4}, m)
	if got[0] != 6 || got[1] != 7 {
		t.Errorf("MatVec = %v, want [6 7]", got)
	}
}

func TestCentroid(t *testing.T) {
	pos := [][]float64{{0, 0}, {2, 0}, {0, 2}}
	w := []float64{0.5, 0.25, 0.25}
	got := Centroid(w, pos)
	if got[0] != 0.5 || got[1] != 0.5 {
		t.Errorf("Centroid = %v, want [0.5 0.5]", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := []float64{1, 2}
	b := Clone(a)
	b[0] = 9
	if a[0] != 1 {
		t.Error("Clone shares backing array")
	}
	m := [][]float64{{1, 2}, {3, 4}}
	mc := CloneMatrix(m)
	mc[0][0] = 9
	if m[0][0] != 1 {
		t.Error("CloneMatrix shares backing array")
	}
}

func TestNewMatrixShape(t *testing.T) {
	m := NewMatrix(3, 2)
	if len(m) != 3 || len(m[1]) != 2 {
		t.Fatalf("NewMatrix shape %dx%d", len(m), len(m[0]))
	}
	m[2][1] = 7
	if m[2][1] != 7 || m[0][0] != 0 {
		t.Error("NewMatrix storage broken")
	}
}

func TestAlmostEqual(t *testing.T) {
	if !AlmostEqual(1, 1+1e-12, 1e-9) {
		t.Error("tiny absolute difference rejected")
	}
	if !AlmostEqual(1e12, 1e12*(1+1e-10), 1e-9) {
		t.Error("tiny relative difference rejected")
	}
	if AlmostEqual(1, 2, 1e-9) {
		t.Error("large difference accepted")
	}
}

func TestMeanMinMax(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("Mean wrong")
	}
	min, max := MinMax([]float64{3, 1, 2})
	if min != 1 || max != 3 {
		t.Errorf("MinMax = %g, %g", min, max)
	}
}

func TestJacobiEigenDiagonal(t *testing.T) {
	a := [][]float64{{3, 0}, {0, 1}}
	vals, vecs, err := JacobiEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-3) > 1e-10 || math.Abs(vals[1]-1) > 1e-10 {
		t.Errorf("eigenvalues %v, want [3 1]", vals)
	}
	if math.Abs(math.Abs(vecs[0][0])-1) > 1e-9 {
		t.Errorf("first eigenvector %v", vecs[0])
	}
}

func TestJacobiEigenKnown(t *testing.T) {
	// Symmetric 2x2 with eigenvalues 3 and 1.
	a := [][]float64{{2, 1}, {1, 2}}
	vals, vecs, err := JacobiEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-3) > 1e-10 || math.Abs(vals[1]-1) > 1e-10 {
		t.Fatalf("eigenvalues %v, want [3 1]", vals)
	}
	// A v = lambda v for each pair.
	for k := 0; k < 2; k++ {
		for i := 0; i < 2; i++ {
			av := a[i][0]*vecs[k][0] + a[i][1]*vecs[k][1]
			if math.Abs(av-vals[k]*vecs[k][i]) > 1e-9 {
				t.Errorf("A v != lambda v for pair %d", k)
			}
		}
	}
}

func TestJacobiEigenRandomReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const n = 8
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			a[i][j] = v
			a[j][i] = v
		}
	}
	vals, vecs, err := JacobiEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct A = sum_k lambda_k v_k v_k^T.
	recon := NewMatrix(n, n)
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				recon[i][j] += vals[k] * vecs[k][i] * vecs[k][j]
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if math.Abs(recon[i][j]-a[i][j]) > 1e-8 {
				t.Fatalf("reconstruction error at (%d,%d): %g vs %g", i, j, recon[i][j], a[i][j])
			}
		}
	}
	// Eigenvalues sorted descending.
	for k := 1; k < n; k++ {
		if vals[k] > vals[k-1]+1e-12 {
			t.Fatalf("eigenvalues not sorted: %v", vals)
		}
	}
}

func TestJacobiEigenRejectsAsymmetric(t *testing.T) {
	if _, _, err := JacobiEigen([][]float64{{1, 2}, {3, 1}}); err == nil {
		t.Error("accepted asymmetric matrix")
	}
	if _, _, err := JacobiEigen([][]float64{{1, 2}}); err == nil {
		t.Error("accepted non-square matrix")
	}
}

func TestCovariance(t *testing.T) {
	rows := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	cov, err := Covariance(rows)
	if err != nil {
		t.Fatal(err)
	}
	// Both variables have variance 4, covariance 4.
	if math.Abs(cov[0][0]-4) > 1e-12 || math.Abs(cov[0][1]-4) > 1e-12 || math.Abs(cov[1][1]-4) > 1e-12 {
		t.Errorf("Covariance = %v", cov)
	}
	if _, err := Covariance([][]float64{{1}}); err == nil {
		t.Error("accepted single observation")
	}
	if _, err := Covariance([][]float64{{1, 2}, {1}}); err == nil {
		t.Error("accepted ragged observations")
	}
}

func TestScale(t *testing.T) {
	xs := []float64{1, 2}
	Scale(xs, 3)
	if xs[0] != 3 || xs[1] != 6 {
		t.Errorf("Scale = %v", xs)
	}
}
