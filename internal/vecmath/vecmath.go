// Package vecmath provides small dense vector and matrix helpers used
// throughout the emdsearch library: compensated summation, norms,
// centroid computation and a Jacobi eigendecomposition for the PCA
// ablation study. All functions operate on plain []float64 and
// [][]float64 values so that callers stay free of wrapper types.
package vecmath

import (
	"fmt"
	"math"
)

// Sum returns the sum of xs using Kahan compensated summation, which
// keeps histogram mass checks stable even for long vectors.
func Sum(xs []float64) float64 {
	var sum, comp float64
	for _, x := range xs {
		y := x - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return sum
}

// Dot returns the inner product of a and b. It panics if the lengths
// differ, since that is always a programming error in this code base.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vecmath: Dot length mismatch %d != %d", len(a), len(b)))
	}
	var sum float64
	for i, x := range a {
		sum += x * b[i]
	}
	return sum
}

// L1 returns the Manhattan distance between a and b.
func L1(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vecmath: L1 length mismatch %d != %d", len(a), len(b)))
	}
	var sum float64
	for i, x := range a {
		sum += math.Abs(x - b[i])
	}
	return sum
}

// L2 returns the Euclidean distance between a and b.
func L2(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vecmath: L2 length mismatch %d != %d", len(a), len(b)))
	}
	var sum float64
	for i, x := range a {
		d := x - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// Lp returns the Minkowski distance of order p between a and b.
// p must be >= 1 for Lp to be a metric; the function does not enforce
// this so callers can experiment with fractional norms.
func Lp(a, b []float64, p float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vecmath: Lp length mismatch %d != %d", len(a), len(b)))
	}
	if p == 1 {
		return L1(a, b)
	}
	if p == 2 {
		return L2(a, b)
	}
	var sum float64
	for i, x := range a {
		sum += math.Pow(math.Abs(x-b[i]), p)
	}
	return math.Pow(sum, 1/p)
}

// Scale multiplies every element of xs by s in place and returns xs.
func Scale(xs []float64, s float64) []float64 {
	for i := range xs {
		xs[i] *= s
	}
	return xs
}

// Normalize scales xs in place so that its elements sum to one and
// returns xs. It panics if the sum is not positive, because a histogram
// of zero total mass has no normalized form.
func Normalize(xs []float64) []float64 {
	sum := Sum(xs)
	if sum <= 0 {
		panic("vecmath: Normalize requires positive total mass")
	}
	return Scale(xs, 1/sum)
}

// Clone returns a copy of xs.
func Clone(xs []float64) []float64 {
	out := make([]float64, len(xs))
	copy(out, xs)
	return out
}

// CloneMatrix returns a deep copy of m.
func CloneMatrix(m [][]float64) [][]float64 {
	out := make([][]float64, len(m))
	for i, row := range m {
		out[i] = Clone(row)
	}
	return out
}

// NewMatrix allocates a rows x cols matrix backed by a single
// contiguous slice, which keeps solver inner loops cache friendly.
func NewMatrix(rows, cols int) [][]float64 {
	backing := make([]float64, rows*cols)
	out := make([][]float64, rows)
	for i := range out {
		out[i] = backing[i*cols : (i+1)*cols : (i+1)*cols]
	}
	return out
}

// MatVec returns x * M for a row vector x and matrix M (len(x) rows,
// cols columns). This is the orientation used by reduction matrices
// (Definition 2 of the paper: x' = x · R).
func MatVec(x []float64, m [][]float64) []float64 {
	if len(x) != len(m) {
		panic(fmt.Sprintf("vecmath: MatVec dimension mismatch %d != %d", len(x), len(m)))
	}
	if len(m) == 0 {
		return nil
	}
	out := make([]float64, len(m[0]))
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		row := m[i]
		for j, r := range row {
			out[j] += xi * r
		}
	}
	return out
}

// Centroid returns the mass-weighted centroid of the given bin
// positions: sum_i w_i * pos_i. Positions must all share one length.
func Centroid(weights []float64, positions [][]float64) []float64 {
	if len(weights) != len(positions) {
		panic(fmt.Sprintf("vecmath: Centroid length mismatch %d != %d", len(weights), len(positions)))
	}
	if len(positions) == 0 {
		return nil
	}
	out := make([]float64, len(positions[0]))
	for i, w := range weights {
		if w == 0 {
			continue
		}
		p := positions[i]
		for k, pk := range p {
			out[k] += w * pk
		}
	}
	return out
}

// AlmostEqual reports whether a and b differ by at most tol in absolute
// terms or by at most tol relative to the larger magnitude. It is the
// single comparison primitive used by the solvers and tests.
func AlmostEqual(a, b, tol float64) bool {
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*scale
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// MinMax returns the smallest and largest element of xs. It panics on
// an empty slice.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		panic("vecmath: MinMax of empty slice")
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}
