package emd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"emdsearch/internal/vecmath"
)

func TestDistancePaperExample(t *testing.T) {
	x := Histogram{0.5, 0, 0.2, 0, 0.3, 0}
	y := Histogram{0, 0.5, 0, 0.2, 0, 0.3}
	z := Histogram{1, 0, 0, 0, 0, 0}
	c := LinearCost(6)

	dxy, err := Distance(x, y, c)
	if err != nil {
		t.Fatal(err)
	}
	dxz, err := Distance(x, z, c)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dxy-1.0) > 1e-12 {
		t.Errorf("EMD(x,y) = %g, want 1.0", dxy)
	}
	if math.Abs(dxz-1.6) > 1e-12 {
		t.Errorf("EMD(x,z) = %g, want 1.6", dxz)
	}
	// The EMD, unlike L1, ranks y closer to x than z (the paper's
	// motivating observation).
	if dxy >= dxz {
		t.Errorf("EMD ranks z closer than y: %g >= %g", dxy, dxz)
	}
	if l1xy, l1xz := vecmath.L1(x, y), vecmath.L1(x, z); l1xy <= l1xz {
		t.Errorf("expected L1 to misrank in this example: L1(x,y)=%g, L1(x,z)=%g", l1xy, l1xz)
	}
}

func TestDistanceValidation(t *testing.T) {
	c := LinearCost(3)
	ok := Histogram{0.5, 0.25, 0.25}
	cases := []struct {
		name string
		x, y Histogram
		c    CostMatrix
	}{
		{"negative entry", Histogram{-0.5, 1.0, 0.5}, ok, c},
		{"unnormalized", Histogram{1, 1, 1}, ok, c},
		{"empty", Histogram{}, ok, c},
		{"nan", Histogram{math.NaN(), 0.5, 0.5}, ok, c},
		{"dim mismatch", Histogram{0.5, 0.5}, ok, c},
		{"cost mismatch", ok, ok, LinearCost(4)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Distance(tc.x, tc.y, tc.c); err == nil {
				t.Fatalf("Distance accepted %s", tc.name)
			}
		})
	}
}

func randomHistogram(rng *rand.Rand, d int) Histogram {
	h := make(Histogram, d)
	for i := range h {
		h[i] = rng.Float64()
		if rng.Intn(3) == 0 {
			h[i] = 0
		}
	}
	var sum float64
	for _, v := range h {
		sum += v
	}
	if sum == 0 {
		h[rng.Intn(d)] = 1
		sum = 1
	}
	for i := range h {
		h[i] /= sum
	}
	return h
}

// TestMetricProperties verifies that EMD under a metric ground distance
// is itself a metric: identity, symmetry and triangle inequality.
func TestMetricProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const d = 8
	c := LinearCost(d)
	dist, err := NewDist(c)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 40; trial++ {
		x := randomHistogram(rng, d)
		y := randomHistogram(rng, d)
		z := randomHistogram(rng, d)
		dxy := dist.Distance(x, y)
		dyx := dist.Distance(y, x)
		dxz := dist.Distance(x, z)
		dzy := dist.Distance(z, y)
		if dxy < -1e-12 {
			t.Fatalf("negative distance %g", dxy)
		}
		if math.Abs(dxy-dyx) > 1e-9 {
			t.Fatalf("asymmetric: %g vs %g", dxy, dyx)
		}
		if dxy > dxz+dzy+1e-9 {
			t.Fatalf("triangle violated: %g > %g + %g", dxy, dxz, dzy)
		}
		if dxx := dist.Distance(x, x); dxx > 1e-10 {
			t.Fatalf("EMD(x,x) = %g", dxx)
		}
	}
}

// TestQuickMassConservation is a property test: for random valid
// histogram pairs the optimal flow ships exactly the source mass to
// exactly the target mass.
func TestQuickMassConservation(t *testing.T) {
	const d = 6
	c := LinearCost(d)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := randomHistogram(rng, d)
		y := randomHistogram(rng, d)
		_, flow, err := DistanceWithFlow(x, y, c)
		if err != nil {
			return false
		}
		for i := range flow {
			var row float64
			for _, v := range flow[i] {
				if v < -1e-12 {
					return false
				}
				row += v
			}
			if math.Abs(row-x[i]) > 1e-9 {
				return false
			}
		}
		for j := 0; j < d; j++ {
			var col float64
			for i := range flow {
				col += flow[i][j]
			}
			if math.Abs(col-y[j]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickL1Relationship: for any ground distance with zero diagonal
// and off-diagonal entries >= m, EMD >= m/2 * L1 does NOT hold in
// general, but EMD <= max(C) always holds for normalized mass. We check
// the sound bound: minC_offdiag * (L1/2) <= EMD <= maxC when x != y.
func TestQuickEMDBounds(t *testing.T) {
	const d = 5
	c := LinearCost(d)
	var maxC float64
	minOff := math.Inf(1)
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			if c[i][j] > maxC {
				maxC = c[i][j]
			}
			if i != j && c[i][j] < minOff {
				minOff = c[i][j]
			}
		}
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := randomHistogram(rng, d)
		y := randomHistogram(rng, d)
		dist, err := Distance(x, y, c)
		if err != nil {
			return false
		}
		l1 := vecmath.L1(x, y)
		// Mass that must move is L1/2; each moved unit costs between
		// minOff and maxC.
		lower := minOff*l1/2 - 1e-9
		upper := maxC*l1/2 + 1e-9
		return dist >= lower && dist <= upper
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestLinearCostProperties(t *testing.T) {
	c := LinearCost(5)
	if !c.IsSymmetric() {
		t.Error("LinearCost not symmetric")
	}
	if !c.IsMetric(1e-12) {
		t.Error("LinearCost not metric")
	}
	if c[0][4] != 4 || c[2][2] != 0 || c[1][3] != 2 {
		t.Errorf("unexpected entries: %v", c)
	}
}

func TestModuloCostProperties(t *testing.T) {
	c := ModuloCost(6)
	if c[0][5] != 1 {
		t.Errorf("ring distance 0-5 = %g, want 1", c[0][5])
	}
	if c[0][3] != 3 {
		t.Errorf("ring distance 0-3 = %g, want 3", c[0][3])
	}
	if !c.IsMetric(1e-12) {
		t.Error("ModuloCost not metric")
	}
}

func TestGridCost(t *testing.T) {
	c, err := GridCost(2, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.Rows() != 6 || c.Cols() != 6 {
		t.Fatalf("grid cost is %dx%d, want 6x6", c.Rows(), c.Cols())
	}
	// Bin 0 is (0,0), bin 5 is (1,2): distance sqrt(1+4).
	want := math.Sqrt(5)
	if math.Abs(c[0][5]-want) > 1e-12 {
		t.Errorf("c[0][5] = %g, want %g", c[0][5], want)
	}
	if !c.IsMetric(1e-9) {
		t.Error("GridCost not metric")
	}
}

func TestPositionCostErrors(t *testing.T) {
	if _, err := PositionCost(nil, [][]float64{{0}}, 2); err == nil {
		t.Error("accepted empty source")
	}
	if _, err := PositionCost([][]float64{{0, 1}}, [][]float64{{0}}, 2); err == nil {
		t.Error("accepted mismatched coordinate dims")
	}
	if _, err := PositionCost([][]float64{{0}}, [][]float64{{1}}, 0.5); err == nil {
		t.Error("accepted p < 1")
	}
}

func TestThresholdedCost(t *testing.T) {
	c, err := ThresholdedCost(LinearCost(5), 2)
	if err != nil {
		t.Fatal(err)
	}
	if c[0][4] != 2 {
		t.Errorf("thresholded c[0][4] = %g, want 2", c[0][4])
	}
	if c[0][1] != 1 {
		t.Errorf("thresholded c[0][1] = %g, want 1", c[0][1])
	}
	if _, err := ThresholdedCost(LinearCost(3), 0); err == nil {
		t.Error("accepted non-positive threshold")
	}
	if !c.IsMetric(1e-12) {
		t.Error("thresholded linear cost should remain a metric")
	}
}

func TestScaleCost(t *testing.T) {
	base := LinearCost(4)
	c2, err := ScaleCost(base, 2)
	if err != nil {
		t.Fatal(err)
	}
	x := Histogram{1, 0, 0, 0}
	y := Histogram{0, 0, 0, 1}
	d1, _ := Distance(x, y, base)
	d2, _ := Distance(x, y, c2)
	if math.Abs(d2-2*d1) > 1e-12 {
		t.Errorf("scaling cost by 2 gave %g, want %g", d2, 2*d1)
	}
	if _, err := ScaleCost(base, -1); err == nil {
		t.Error("accepted negative scale")
	}
}

func TestRectangularDistance(t *testing.T) {
	// 3-bin source vs 2-bin target with explicit rectangular costs.
	x := Histogram{0.2, 0.3, 0.5}
	y := Histogram{0.6, 0.4}
	c := CostMatrix{{0, 2}, {1, 1}, {2, 0}}
	got, err := Distance(x, y, c)
	if err != nil {
		t.Fatal(err)
	}
	// Best: bin0->t0 (0), bin1->t0 0.3@1? Alternatives: bin1 split.
	// t0 needs 0.6: 0.2 from bin0 @0, 0.3 from bin1 @1, 0.1 from bin2 @2.
	// t1 needs 0.4: 0.4 from bin2 @0. Total = 0.3 + 0.2 = 0.5.
	if math.Abs(got-0.5) > 1e-12 {
		t.Errorf("rectangular EMD = %g, want 0.5", got)
	}
}

func TestNewDistRejectsBadCost(t *testing.T) {
	if _, err := NewDist(CostMatrix{{0, -1}, {1, 0}}); err == nil {
		t.Error("NewDist accepted negative cost")
	}
	if _, err := NewDist(CostMatrix{{0, 1}, {1}}); err == nil {
		t.Error("NewDist accepted ragged cost")
	}
}

func TestNormalize(t *testing.T) {
	h := Normalize(Histogram{2, 2, 4})
	want := Histogram{0.25, 0.25, 0.5}
	for i := range h {
		if math.Abs(h[i]-want[i]) > 1e-12 {
			t.Fatalf("Normalize = %v, want %v", h, want)
		}
	}
	if err := Validate(h); err != nil {
		t.Fatal(err)
	}
}
