package emd

import (
	"math"
	"math/rand"
	"testing"
)

func TestPairwiseDistancesMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const d, n = 8, 20
	dist, err := NewDist(LinearCost(d))
	if err != nil {
		t.Fatal(err)
	}
	hists := make([]Histogram, n)
	for i := range hists {
		hists[i] = randomHistogram(rng, d)
	}
	got, err := PairwiseDistances(hists, dist, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if got[i][i] != 0 {
			t.Fatalf("diagonal (%d,%d) = %g", i, i, got[i][i])
		}
		for j := 0; j < n; j++ {
			want := dist.Distance(hists[i], hists[j])
			if i == j {
				want = 0
			}
			if math.Abs(got[i][j]-want) > 1e-9 {
				t.Fatalf("(%d,%d) = %g, want %g", i, j, got[i][j], want)
			}
			if math.Abs(got[i][j]-got[j][i]) > 1e-12 {
				t.Fatalf("matrix not symmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestPairwiseDistancesAsymmetricCost(t *testing.T) {
	// An asymmetric (but valid) ground distance: moving right is twice
	// as expensive as moving left.
	const d = 4
	c := make(CostMatrix, d)
	for i := range c {
		c[i] = make([]float64, d)
		for j := range c[i] {
			if j > i {
				c[i][j] = 2 * float64(j-i)
			} else {
				c[i][j] = float64(i - j)
			}
		}
	}
	dist, err := NewDist(c)
	if err != nil {
		t.Fatal(err)
	}
	hists := []Histogram{
		{1, 0, 0, 0},
		{0, 0, 0, 1},
		{0.25, 0.25, 0.25, 0.25},
	}
	m, err := PairwiseDistances(hists, dist, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Moving all mass right 3 steps costs 6; left costs 3.
	if math.Abs(m[0][1]-6) > 1e-9 || math.Abs(m[1][0]-3) > 1e-9 {
		t.Fatalf("asymmetric distances: %g / %g, want 6 / 3", m[0][1], m[1][0])
	}
}

func TestPairwiseDistancesValidation(t *testing.T) {
	dist, _ := NewDist(LinearCost(3))
	if _, err := PairwiseDistances(nil, dist, 1); err == nil {
		t.Error("accepted empty input")
	}
	if _, err := PairwiseDistances([]Histogram{{0.5, 0.5}}, dist, 1); err == nil {
		t.Error("accepted wrong dimensionality")
	}
	if _, err := PairwiseDistances([]Histogram{{2, 0, 0}}, dist, 1); err == nil {
		t.Error("accepted unnormalized histogram")
	}
}

func TestPairwiseDistancesDefaultWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dist, _ := NewDist(LinearCost(5))
	hists := []Histogram{randomHistogram(rng, 5), randomHistogram(rng, 5)}
	m, err := PairwiseDistances(hists, dist, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 2 {
		t.Fatalf("matrix size %d", len(m))
	}
}
