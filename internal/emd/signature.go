package emd

import (
	"fmt"
	"math"

	"emdsearch/internal/transport"
	"emdsearch/internal/vecmath"
)

// Signature is the sparse representation the EMD was originally
// defined over in computer vision (Rubner et al.): a variable-length
// set of feature-space cluster centers with non-negative weights.
// Signatures of different sizes compare directly — the ground distance
// is computed between their positions on the fly, so no common binning
// is needed. Histograms are the special case of a fixed, shared
// position set.
type Signature struct {
	// Positions holds one feature-space coordinate vector per cluster.
	Positions [][]float64
	// Weights holds the non-negative mass of each cluster.
	Weights []float64
}

// Validate checks structural consistency and returns the total mass.
func (s Signature) Validate() (float64, error) {
	if len(s.Positions) == 0 {
		return 0, fmt.Errorf("emd: empty signature")
	}
	if len(s.Positions) != len(s.Weights) {
		return 0, fmt.Errorf("emd: signature has %d positions but %d weights", len(s.Positions), len(s.Weights))
	}
	dim := len(s.Positions[0])
	for i, p := range s.Positions {
		if len(p) != dim {
			return 0, fmt.Errorf("emd: signature position %d has %d coordinates, want %d", i, len(p), dim)
		}
		for _, v := range p {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0, fmt.Errorf("emd: invalid coordinate in signature position %d", i)
			}
		}
	}
	var mass float64
	for i, w := range s.Weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return 0, fmt.Errorf("emd: invalid signature weight [%d] = %g", i, w)
		}
		mass += w
	}
	if mass <= 0 {
		return 0, fmt.Errorf("emd: signature has no mass")
	}
	return mass, nil
}

// Dim returns the feature-space dimensionality of the signature.
func (s Signature) Dim() int {
	if len(s.Positions) == 0 {
		return 0
	}
	return len(s.Positions[0])
}

// SignatureDistance computes the EMD between two signatures under the
// Lp ground distance between their cluster positions. Total masses
// must agree up to transport.MassTolerance (normalize the weights
// first, or use PartialSignatureDistance for unequal masses).
func SignatureDistance(a, b Signature, p float64) (float64, error) {
	massA, err := a.Validate()
	if err != nil {
		return 0, fmt.Errorf("emd: signature a: %w", err)
	}
	massB, err := b.Validate()
	if err != nil {
		return 0, fmt.Errorf("emd: signature b: %w", err)
	}
	if a.Dim() != b.Dim() {
		return 0, fmt.Errorf("emd: signatures live in %d- and %d-dimensional feature spaces", a.Dim(), b.Dim())
	}
	if scale := math.Max(massA, massB); math.Abs(massA-massB)/scale > transport.MassTolerance {
		return 0, fmt.Errorf("emd: signature masses %g and %g differ; normalize or use PartialSignatureDistance", massA, massB)
	}
	cost, err := PositionCost(a.Positions, b.Positions, p)
	if err != nil {
		return 0, err
	}
	sol, err := transport.Solve(transport.Problem{Supply: a.Weights, Demand: b.Weights, Cost: cost})
	if err != nil {
		return 0, err
	}
	return sol.Objective, nil
}

// PartialSignatureDistance computes the unequal-mass (partial) EMD
// between two signatures: the cheaper transport of the smaller total
// mass, with surplus mass free.
func PartialSignatureDistance(a, b Signature, p float64) (float64, error) {
	if _, err := a.Validate(); err != nil {
		return 0, fmt.Errorf("emd: signature a: %w", err)
	}
	if _, err := b.Validate(); err != nil {
		return 0, fmt.Errorf("emd: signature b: %w", err)
	}
	if a.Dim() != b.Dim() {
		return 0, fmt.Errorf("emd: signatures live in %d- and %d-dimensional feature spaces", a.Dim(), b.Dim())
	}
	cost, err := PositionCost(a.Positions, b.Positions, p)
	if err != nil {
		return 0, err
	}
	return PartialDistance(a.Weights, b.Weights, cost)
}

// NormalizeSignature returns a copy of s with weights scaled to total
// mass one.
func NormalizeSignature(s Signature) Signature {
	return Signature{
		Positions: s.Positions,
		Weights:   vecmath.Normalize(vecmath.Clone(s.Weights)),
	}
}

// HistogramSignature converts a histogram over known bin positions
// into a sparse signature, dropping zero-weight bins. The EMD between
// the resulting signatures equals the histogram EMD under the same
// positional ground distance, but for sparse histograms the
// transportation problem shrinks to the occupied bins — often a large
// constant-factor win.
func HistogramSignature(h Histogram, positions [][]float64) (Signature, error) {
	if len(h) != len(positions) {
		return Signature{}, fmt.Errorf("emd: histogram has %d bins, %d positions given", len(h), len(positions))
	}
	var s Signature
	for i, w := range h {
		if w <= 0 {
			continue
		}
		s.Positions = append(s.Positions, positions[i])
		s.Weights = append(s.Weights, w)
	}
	if len(s.Weights) == 0 {
		return Signature{}, fmt.Errorf("emd: histogram has no positive mass")
	}
	return s, nil
}
