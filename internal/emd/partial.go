package emd

import (
	"fmt"
	"math"

	"emdsearch/internal/transport"
	"emdsearch/internal/vecmath"
)

// validatePartial checks a histogram for the unequal-mass variants:
// non-negative finite entries with positive total mass (normalization
// is not required).
func validatePartial(h Histogram) (float64, error) {
	if len(h) == 0 {
		return 0, fmt.Errorf("emd: empty histogram")
	}
	for i, v := range h {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return 0, fmt.Errorf("emd: invalid histogram entry [%d] = %g", i, v)
		}
	}
	mass := vecmath.Sum(h)
	if mass <= 0 {
		return 0, fmt.Errorf("emd: histogram has no mass")
	}
	return mass, nil
}

// PartialDistance computes the partial Earth Mover's Distance between
// two non-negative histograms of possibly different total mass: the
// minimal cost of transporting the *smaller* of the two masses, with
// the surplus on the heavier side left in place for free. This is the
// classic unequal-weights EMD of Rubner et al. (without their
// normalization by total flow; divide by min(mass) for that form).
// Internally a zero-cost slack bin absorbs the surplus, so the same
// exact solvers apply.
func PartialDistance(x, y Histogram, c CostMatrix) (float64, error) {
	massX, err := validatePartial(x)
	if err != nil {
		return 0, fmt.Errorf("emd: source: %w", err)
	}
	massY, err := validatePartial(y)
	if err != nil {
		return 0, fmt.Errorf("emd: target: %w", err)
	}
	if err := c.Validate(); err != nil {
		return 0, err
	}
	if c.Rows() != len(x) || c.Cols() != len(y) {
		return 0, fmt.Errorf("emd: cost matrix is %dx%d, histograms are %d and %d dimensional",
			c.Rows(), c.Cols(), len(x), len(y))
	}

	diff := massX - massY
	supply := x
	demand := y
	cost := [][]float64(c)
	switch {
	case diff > 0:
		// Slack demand bin absorbs the source surplus at zero cost.
		demand = append(vecmath.Clone(y), diff)
		cost = make([][]float64, len(x))
		for i, row := range c {
			cost[i] = append(vecmath.Clone(row), 0)
		}
	case diff < 0:
		// Slack supply bin provides the missing mass at zero cost.
		supply = append(vecmath.Clone(x), -diff)
		cost = make([][]float64, len(x)+1)
		for i, row := range c {
			cost[i] = row
		}
		cost[len(x)] = make([]float64, len(y))
	}
	sol, err := transport.Solve(transport.Problem{Supply: supply, Demand: demand, Cost: cost})
	if err != nil {
		return 0, err
	}
	return sol.Objective, nil
}

// PenalizedDistance computes the EMD-hat style unequal-mass distance:
// the partial EMD plus a per-unit penalty for the unmatched surplus
// mass,
//
//	EMDhat(x, y) = PartialDistance(x, y) + penalty * |mass(x) - mass(y)|
//
// For penalty >= max(c)/2 with a metric ground distance this is known
// to be a metric on non-negative histograms, making it suitable for
// metric indexing of unnormalized data.
func PenalizedDistance(x, y Histogram, c CostMatrix, penalty float64) (float64, error) {
	if penalty < 0 || math.IsNaN(penalty) || math.IsInf(penalty, 0) {
		return 0, fmt.Errorf("emd: invalid penalty %g", penalty)
	}
	partial, err := PartialDistance(x, y, c)
	if err != nil {
		return 0, err
	}
	massX := vecmath.Sum(x)
	massY := vecmath.Sum(y)
	return partial + penalty*math.Abs(massX-massY), nil
}
