// Package emd implements the Earth Mover's Distance of Definition 1 in
// Wichterich et al. (SIGMOD 2008): the minimal cost of transforming one
// non-negative, mass-normalized histogram into another under a ground
// distance given as a cost matrix. The package also provides the
// common cost-matrix constructors used by the paper's application
// domains (1-D linear bins, positional Lp distances, image tilings) and
// rectangular EMDs between histograms of different dimensionality, as
// required by asymmetric query/database reductions.
package emd

import (
	"fmt"
	"math"
	"sync/atomic"

	"emdsearch/internal/transport"
	"emdsearch/internal/vecmath"
)

// NormalizationTolerance is the maximum deviation of a histogram's
// total mass from 1 accepted by Validate.
const NormalizationTolerance = 1e-6

// Histogram is a non-negative feature vector of normalized total mass.
// It is a plain slice so that callers can construct and manipulate it
// with ordinary Go code.
type Histogram = []float64

// CostMatrix is the ground distance between histogram bins: Cost[i][j]
// is the cost of moving one unit of mass from bin i to bin j. It may be
// rectangular when source and target histograms have different
// dimensionality (reduced EMD with R1 != R2).
type CostMatrix [][]float64

// Rows returns the number of source bins covered by c.
func (c CostMatrix) Rows() int { return len(c) }

// Cols returns the number of target bins covered by c, 0 for an empty
// matrix.
func (c CostMatrix) Cols() int {
	if len(c) == 0 {
		return 0
	}
	return len(c[0])
}

// Validate checks that c is rectangular with non-negative finite
// entries.
func (c CostMatrix) Validate() error {
	if len(c) == 0 {
		return fmt.Errorf("emd: empty cost matrix")
	}
	n := len(c[0])
	for i, row := range c {
		if len(row) != n {
			return fmt.Errorf("emd: cost row %d has %d columns, want %d", i, len(row), n)
		}
		for j, v := range row {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("emd: invalid cost[%d][%d] = %g", i, j, v)
			}
		}
	}
	return nil
}

// IsSymmetric reports whether c is square with c[i][j] == c[j][i].
func (c CostMatrix) IsSymmetric() bool {
	if c.Rows() != c.Cols() {
		return false
	}
	for i := range c {
		for j := i + 1; j < len(c); j++ {
			if c[i][j] != c[j][i] {
				return false
			}
		}
	}
	return true
}

// IsMetric reports whether square c has a zero diagonal, is symmetric
// and satisfies the triangle inequality up to tol. The EMD is itself a
// metric exactly when its ground distance is one.
func (c CostMatrix) IsMetric(tol float64) bool {
	d := c.Rows()
	if d != c.Cols() {
		return false
	}
	for i := 0; i < d; i++ {
		if c[i][i] > tol {
			return false
		}
		for j := 0; j < d; j++ {
			if math.Abs(c[i][j]-c[j][i]) > tol {
				return false
			}
			for k := 0; k < d; k++ {
				if c[i][j] > c[i][k]+c[k][j]+tol {
					return false
				}
			}
		}
	}
	return true
}

// Validate checks that h is a valid EMD operand: non-negative entries
// of total mass 1 up to NormalizationTolerance.
func Validate(h Histogram) error {
	if len(h) == 0 {
		return fmt.Errorf("emd: empty histogram")
	}
	for i, v := range h {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("emd: invalid histogram entry [%d] = %g", i, v)
		}
	}
	if mass := vecmath.Sum(h); math.Abs(mass-1) > NormalizationTolerance {
		return fmt.Errorf("emd: histogram mass %g, want 1", mass)
	}
	return nil
}

// Normalize returns a normalized copy of h (total mass one). It panics
// if h has no positive mass.
func Normalize(h Histogram) Histogram {
	return vecmath.Normalize(vecmath.Clone(h))
}

// Distance computes the Earth Mover's Distance between x and y under
// the ground distance c. The cost matrix must have len(x) rows and
// len(y) columns. Histograms are validated on every call; use a
// precompiled Dist for query loops.
func Distance(x, y Histogram, c CostMatrix) (float64, error) {
	sol, err := solve(x, y, c)
	if err != nil {
		return 0, err
	}
	return sol.Objective, nil
}

// DistanceWithFlow computes the EMD and additionally returns the
// optimal flow matrix F with F[i][j] the mass moved from bin i of x to
// bin j of y. The flow-based reduction heuristics consume these flows.
func DistanceWithFlow(x, y Histogram, c CostMatrix) (float64, [][]float64, error) {
	sol, err := solve(x, y, c)
	if err != nil {
		return 0, nil, err
	}
	return sol.Objective, sol.Flow, nil
}

func solve(x, y Histogram, c CostMatrix) (*transport.Solution, error) {
	if err := Validate(x); err != nil {
		return nil, fmt.Errorf("emd: source: %w", err)
	}
	if err := Validate(y); err != nil {
		return nil, fmt.Errorf("emd: target: %w", err)
	}
	if c.Rows() != len(x) || c.Cols() != len(y) {
		return nil, fmt.Errorf("emd: cost matrix is %dx%d, histograms are %d and %d dimensional",
			c.Rows(), c.Cols(), len(x), len(y))
	}
	return transport.Solve(transport.Problem{Supply: x, Demand: y, Cost: c})
}

// Dist is a compiled EMD for a fixed cost matrix. It skips repeated
// cost-matrix validation and pools the solver working state, making
// Distance allocation-free on the hot path. Dist is safe for
// concurrent use.
type Dist struct {
	cost   CostMatrix
	solver *transport.Solver
}

// NewDist validates c once and returns a compiled distance function.
func NewDist(c CostMatrix) (*Dist, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	solver, err := transport.NewSolver(c.Rows(), c.Cols())
	if err != nil {
		return nil, err
	}
	return &Dist{cost: c, solver: solver}, nil
}

// Cost returns the ground-distance matrix of d.
func (d *Dist) Cost() CostMatrix { return d.cost }

// Dims returns the expected source and target dimensionality.
func (d *Dist) Dims() (rows, cols int) { return d.cost.Rows(), d.cost.Cols() }

// Distance computes the EMD between x and y. The histograms are
// trusted to be valid operands (non-negative, normalized) and are not
// re-validated; this is the fast path for inner loops — no allocation
// beyond the pooled solver state, zero-mass bins stripped before
// solving, and the simplex warm-started from the pooled state's
// previous basis. Use DistanceValidated when the operands are not
// under the caller's control.
func (d *Dist) Distance(x, y Histogram) float64 {
	res, err := d.solver.SolveValueBounded(transport.Problem{Supply: x, Demand: y, Cost: d.cost}, math.Inf(1))
	if err != nil {
		panic(fmt.Sprintf("emd: solver failed on trusted input: %v", err))
	}
	return res.Value
}

// BoundedDistance is the outcome of a threshold-aware EMD computation;
// see transport.BoundedResult for the field semantics (Value is the
// exact EMD, or a certified lower bound on it when Aborted).
type BoundedDistance = transport.BoundedResult

// DistanceBounded computes the EMD between x and y, abandoning the
// solve as soon as a certified lower bound on the distance exceeds
// abortAbove. This is the refinement kernel of threshold-aware k-NN
// and range search: the certified bound guarantees an aborted
// candidate's true distance lies above the live pruning threshold, so
// discarding it cannot change results. With abortAbove = +Inf it
// behaves exactly like Distance. Operands are trusted, as in Distance.
func (d *Dist) DistanceBounded(x, y Histogram, abortAbove float64) BoundedDistance {
	res, err := d.solver.SolveValueBounded(transport.Problem{Supply: x, Demand: y, Cost: d.cost}, abortAbove)
	if err != nil {
		panic(fmt.Sprintf("emd: solver failed on trusted input: %v", err))
	}
	return res
}

// DistanceBoundedIntr is DistanceBounded with a cooperative interrupt
// flag polled inside the simplex pivot loop: once intr is set the
// solve stops within one pivot's worth of work and the result carries
// Interrupted=true with Value a certified lower bound on the true EMD
// (weak duality). This is how a query deadline cuts short even a
// single large refinement. A nil intr is byte-identical to
// DistanceBounded. Operands are trusted, as in Distance.
func (d *Dist) DistanceBoundedIntr(x, y Histogram, abortAbove float64, intr *atomic.Bool) BoundedDistance {
	res, err := d.solver.SolveValueBoundedIntr(transport.Problem{Supply: x, Demand: y, Cost: d.cost}, abortAbove, intr)
	if err != nil {
		panic(fmt.Sprintf("emd: solver failed on trusted input: %v", err))
	}
	return res
}

// DistanceValidated computes the EMD between x and y after validating
// both histograms, with the legacy unbounded kernel: full dense shape,
// cold Vogel start, run to optimality. Its value is bit-identical to
// Distance's — the solvers share the canonical objective — at the cost
// of per-call validation and no warm-start/sparsity savings. It exists
// for callers with untrusted operands and as the comparison baseline
// for benchmarking the bounded kernel.
func (d *Dist) DistanceValidated(x, y Histogram) (float64, error) {
	if err := Validate(x); err != nil {
		return 0, fmt.Errorf("emd: source: %w", err)
	}
	if err := Validate(y); err != nil {
		return 0, fmt.Errorf("emd: target: %w", err)
	}
	return d.solver.SolveValue(transport.Problem{Supply: x, Demand: y, Cost: d.cost})
}

// DistanceWithFlow computes the EMD and the optimal flow matrix.
func (d *Dist) DistanceWithFlow(x, y Histogram) (float64, [][]float64) {
	sol, err := transport.Solve(transport.Problem{Supply: x, Demand: y, Cost: d.cost})
	if err != nil {
		panic(fmt.Sprintf("emd: solver failed on validated input: %v", err))
	}
	return sol.Objective, sol.Flow
}
