package emd

import (
	"math"
	"math/rand"
	"testing"
)

func TestSignatureValidate(t *testing.T) {
	good := Signature{
		Positions: [][]float64{{0, 0}, {1, 1}},
		Weights:   []float64{0.5, 0.5},
	}
	if _, err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		s    Signature
	}{
		{"empty", Signature{}},
		{"length mismatch", Signature{Positions: [][]float64{{0}}, Weights: []float64{1, 2}}},
		{"ragged positions", Signature{Positions: [][]float64{{0, 1}, {2}}, Weights: []float64{1, 1}}},
		{"negative weight", Signature{Positions: [][]float64{{0}, {1}}, Weights: []float64{-1, 2}}},
		{"zero mass", Signature{Positions: [][]float64{{0}}, Weights: []float64{0}}},
		{"nan coordinate", Signature{Positions: [][]float64{{math.NaN()}}, Weights: []float64{1}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.s.Validate(); err == nil {
				t.Fatalf("accepted %s", tc.name)
			}
		})
	}
}

func TestSignatureDistancePointMasses(t *testing.T) {
	a := Signature{Positions: [][]float64{{0, 0}}, Weights: []float64{1}}
	b := Signature{Positions: [][]float64{{3, 4}}, Weights: []float64{1}}
	got, err := SignatureDistance(a, b, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-5) > 1e-12 {
		t.Errorf("point-mass EMD = %g, want 5", got)
	}
}

func TestSignatureDistanceDifferentSizes(t *testing.T) {
	// One cluster of mass 1 vs two clusters of mass 0.5 each, one of
	// them at the same place: only 0.5 moves distance 2.
	a := Signature{Positions: [][]float64{{0}}, Weights: []float64{1}}
	b := Signature{Positions: [][]float64{{0}, {2}}, Weights: []float64{0.5, 0.5}}
	got, err := SignatureDistance(a, b, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("EMD = %g, want 1", got)
	}
}

func TestSignatureDistanceErrors(t *testing.T) {
	a := Signature{Positions: [][]float64{{0}}, Weights: []float64{1}}
	b2 := Signature{Positions: [][]float64{{0, 1}}, Weights: []float64{1}}
	if _, err := SignatureDistance(a, b2, 2); err == nil {
		t.Error("accepted mismatched feature dimensionality")
	}
	heavy := Signature{Positions: [][]float64{{1}}, Weights: []float64{2}}
	if _, err := SignatureDistance(a, heavy, 2); err == nil {
		t.Error("accepted unequal masses")
	}
	if _, err := PartialSignatureDistance(a, heavy, 2); err != nil {
		t.Errorf("partial rejected unequal masses: %v", err)
	}
}

func TestPartialSignatureDistance(t *testing.T) {
	a := Signature{Positions: [][]float64{{0}}, Weights: []float64{2}}
	b := Signature{Positions: [][]float64{{3}}, Weights: []float64{1}}
	got, err := PartialSignatureDistance(a, b, 1)
	if err != nil {
		t.Fatal(err)
	}
	// One unit moves distance 3; the surplus unit is free.
	if math.Abs(got-3) > 1e-12 {
		t.Errorf("partial signature EMD = %g, want 3", got)
	}
}

func TestNormalizeSignature(t *testing.T) {
	s := NormalizeSignature(Signature{
		Positions: [][]float64{{0}, {1}},
		Weights:   []float64{2, 6},
	})
	if s.Weights[0] != 0.25 || s.Weights[1] != 0.75 {
		t.Errorf("normalized weights = %v", s.Weights)
	}
}

// TestHistogramSignatureEquivalence: converting sparse histograms to
// signatures must preserve the EMD exactly while shrinking the
// problem.
func TestHistogramSignatureEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const d = 20
	positions := make([][]float64, d)
	for i := range positions {
		positions[i] = []float64{float64(i)}
	}
	cost, err := PositionCost(positions, positions, 1)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 15; trial++ {
		// Sparse histograms: ~4 occupied bins each.
		x := make(Histogram, d)
		y := make(Histogram, d)
		for k := 0; k < 4; k++ {
			x[rng.Intn(d)] += rng.Float64()
			y[rng.Intn(d)] += rng.Float64()
		}
		x = Normalize(x)
		y = Normalize(y)
		full, err := Distance(x, y, cost)
		if err != nil {
			t.Fatal(err)
		}
		sx, err := HistogramSignature(x, positions)
		if err != nil {
			t.Fatal(err)
		}
		sy, err := HistogramSignature(y, positions)
		if err != nil {
			t.Fatal(err)
		}
		if len(sx.Weights) >= d {
			t.Fatalf("signature not sparse: %d clusters", len(sx.Weights))
		}
		sparse, err := SignatureDistance(sx, sy, 1)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(full-sparse) > 1e-9 {
			t.Fatalf("trial %d: histogram EMD %g != signature EMD %g", trial, full, sparse)
		}
	}
}

func TestHistogramSignatureErrors(t *testing.T) {
	if _, err := HistogramSignature(Histogram{1, 0}, [][]float64{{0}}); err == nil {
		t.Error("accepted mismatched lengths")
	}
	if _, err := HistogramSignature(Histogram{0, 0}, [][]float64{{0}, {1}}); err == nil {
		t.Error("accepted zero-mass histogram")
	}
}
