package emd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"emdsearch/internal/vecmath"
)

func TestPartialDistanceEqualMassMatchesDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const d = 8
	c := LinearCost(d)
	for trial := 0; trial < 20; trial++ {
		x := randomHistogram(rng, d)
		y := randomHistogram(rng, d)
		full, err := Distance(x, y, c)
		if err != nil {
			t.Fatal(err)
		}
		partial, err := PartialDistance(x, y, c)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(full-partial) > 1e-9 {
			t.Fatalf("equal-mass partial %g != full %g", partial, full)
		}
	}
}

func TestPartialDistanceDominatedIsZero(t *testing.T) {
	// y fits entirely inside x bin-by-bin: nothing has to move.
	x := Histogram{0.5, 0.3, 0.2}
	y := Histogram{0.2, 0.1, 0.1}
	got, err := PartialDistance(x, y, LinearCost(3))
	if err != nil {
		t.Fatal(err)
	}
	if got > 1e-10 {
		t.Errorf("dominated partial EMD = %g, want 0", got)
	}
	// And symmetrically.
	got, err = PartialDistance(y, x, LinearCost(3))
	if err != nil {
		t.Fatal(err)
	}
	if got > 1e-10 {
		t.Errorf("reverse dominated partial EMD = %g, want 0", got)
	}
}

func TestPartialDistanceForcedMove(t *testing.T) {
	// x has 2 units at bin 0; y wants 1 unit at bin 2. The matched
	// unit moves distance 2; the surplus unit is free.
	x := Histogram{2, 0, 0}
	y := Histogram{0, 0, 1}
	got, err := PartialDistance(x, y, LinearCost(3))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2) > 1e-10 {
		t.Errorf("partial EMD = %g, want 2", got)
	}
}

func TestPartialDistanceSymmetryOfRoles(t *testing.T) {
	// For symmetric ground distance, swapping arguments changes which
	// side carries the slack but not the optimum.
	rng := rand.New(rand.NewSource(5))
	const d = 6
	c := LinearCost(d)
	for trial := 0; trial < 20; trial++ {
		x := make(Histogram, d)
		y := make(Histogram, d)
		for i := 0; i < d; i++ {
			x[i] = rng.Float64() * 2
			y[i] = rng.Float64()
		}
		a, err := PartialDistance(x, y, c)
		if err != nil {
			t.Fatal(err)
		}
		b, err := PartialDistance(y, x, c)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a-b) > 1e-9 {
			t.Fatalf("partial EMD asymmetric: %g vs %g", a, b)
		}
	}
}

// TestQuickPartialLowerBoundsScaled: the partial EMD is at most the
// EMD between the normalized histograms scaled by the smaller mass
// (matching the smaller mass optimally can only be cheaper than
// following the proportional coupling).
func TestQuickPartialLowerBoundsScaled(t *testing.T) {
	const d = 5
	c := LinearCost(d)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := make(Histogram, d)
		y := make(Histogram, d)
		for i := 0; i < d; i++ {
			x[i] = rng.Float64() * 3
			y[i] = rng.Float64()
		}
		massX := vecmath.Sum(x)
		massY := vecmath.Sum(y)
		if massX == 0 || massY == 0 {
			return true
		}
		partial, err := PartialDistance(x, y, c)
		if err != nil {
			return false
		}
		normX := Normalize(x)
		normY := Normalize(y)
		full, err := Distance(normX, normY, c)
		if err != nil {
			return false
		}
		return partial <= math.Min(massX, massY)*full+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestPenalizedDistance(t *testing.T) {
	x := Histogram{2, 0, 0}
	y := Histogram{0, 0, 1}
	got, err := PenalizedDistance(x, y, LinearCost(3), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Partial 2 plus penalty 0.5 * surplus 1.
	if math.Abs(got-2.5) > 1e-10 {
		t.Errorf("penalized = %g, want 2.5", got)
	}
	if _, err := PenalizedDistance(x, y, LinearCost(3), -1); err == nil {
		t.Error("accepted negative penalty")
	}
	if _, err := PenalizedDistance(x, y, LinearCost(3), math.Inf(1)); err == nil {
		t.Error("accepted infinite penalty")
	}
}

// TestQuickPenalizedMetric: with penalty = max cost, the penalized
// distance satisfies the triangle inequality on random unnormalized
// histograms (it is a metric for penalty >= maxC/2; maxC is safely
// above that).
func TestQuickPenalizedMetric(t *testing.T) {
	const d = 4
	c := LinearCost(d)
	penalty := float64(d - 1)
	gen := func(rng *rand.Rand) Histogram {
		h := make(Histogram, d)
		for i := range h {
			h[i] = rng.Float64() * 2
		}
		h[rng.Intn(d)] += 0.1 // ensure positive mass
		return h
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x, y, z := gen(rng), gen(rng), gen(rng)
		dxy, err := PenalizedDistance(x, y, c, penalty)
		if err != nil {
			return false
		}
		dxz, err := PenalizedDistance(x, z, c, penalty)
		if err != nil {
			return false
		}
		dzy, err := PenalizedDistance(z, y, c, penalty)
		if err != nil {
			return false
		}
		return dxy <= dxz+dzy+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestPartialDistanceValidation(t *testing.T) {
	c := LinearCost(3)
	ok := Histogram{1, 1, 1}
	if _, err := PartialDistance(Histogram{0, 0, 0}, ok, c); err == nil {
		t.Error("accepted zero-mass source")
	}
	if _, err := PartialDistance(ok, Histogram{-1, 2, 1}, c); err == nil {
		t.Error("accepted negative entry")
	}
	if _, err := PartialDistance(ok, Histogram{1, 1}, c); err == nil {
		t.Error("accepted dimension mismatch")
	}
	if _, err := PartialDistance(nil, ok, c); err == nil {
		t.Error("accepted empty histogram")
	}
}
