package emd

import (
	"fmt"
	"runtime"
	"sync"
)

// PairwiseDistances computes the symmetric distance matrix of the
// given histograms under d, using up to workers goroutines (0 means
// GOMAXPROCS). For a symmetric ground distance each unordered pair is
// solved once. This is the building block for offline analyses —
// VP-tree construction, clustering of objects, distance-distribution
// studies — where the quadratic EMD bill dominates and parallelism is
// free.
func PairwiseDistances(hists []Histogram, d *Dist, workers int) ([][]float64, error) {
	n := len(hists)
	if n == 0 {
		return nil, fmt.Errorf("emd: PairwiseDistances on empty input")
	}
	rows, cols := d.Dims()
	if rows != cols {
		return nil, fmt.Errorf("emd: PairwiseDistances needs a square ground distance, got %dx%d", rows, cols)
	}
	for i, h := range hists {
		if len(h) != rows {
			return nil, fmt.Errorf("emd: histogram %d has %d dimensions, want %d", i, len(h), rows)
		}
		if err := Validate(h); err != nil {
			return nil, fmt.Errorf("emd: histogram %d: %w", i, err)
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	symmetric := d.Cost().IsSymmetric()

	out := make([][]float64, n)
	backing := make([]float64, n*n)
	for i := range out {
		out[i] = backing[i*n : (i+1)*n : (i+1)*n]
	}

	// Work unit: one row i, computing cells j > i (symmetric) or all
	// j != i (asymmetric). Rows are handed out via a channel so long
	// rows at small i (symmetric case) balance naturally.
	rowCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range rowCh {
				if symmetric {
					for j := i + 1; j < n; j++ {
						v := d.Distance(hists[i], hists[j])
						out[i][j] = v
						out[j][i] = v
					}
				} else {
					for j := 0; j < n; j++ {
						if j == i {
							continue
						}
						out[i][j] = d.Distance(hists[i], hists[j])
					}
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		rowCh <- i
	}
	close(rowCh)
	wg.Wait()
	return out, nil
}
