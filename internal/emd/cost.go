package emd

import (
	"fmt"
	"math"

	"emdsearch/internal/vecmath"
)

// LinearCost returns the d x d ground distance |i-j| between 1-D bins,
// the Manhattan cost matrix of Figure 1 in the paper. It models ordered
// scalar features such as intensity levels or spectral bands.
func LinearCost(d int) CostMatrix {
	c := vecmath.NewMatrix(d, d)
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			c[i][j] = math.Abs(float64(i - j))
		}
	}
	return c
}

// ModuloCost returns the d x d circular ground distance
// min(|i-j|, d-|i-j|) between 1-D bins arranged on a ring, as used for
// hue histograms where bin d-1 neighbors bin 0.
func ModuloCost(d int) CostMatrix {
	c := vecmath.NewMatrix(d, d)
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			diff := math.Abs(float64(i - j))
			c[i][j] = math.Min(diff, float64(d)-diff)
		}
	}
	return c
}

// PositionCost returns the ground distance between bins located at the
// given positions in feature space, measured with the Minkowski norm of
// order p (p >= 1). This covers color-space and tile-center ground
// distances. Positions of source and target may differ in count but
// must share one coordinate dimensionality.
func PositionCost(source, target [][]float64, p float64) (CostMatrix, error) {
	if len(source) == 0 || len(target) == 0 {
		return nil, fmt.Errorf("emd: PositionCost requires non-empty position sets")
	}
	dim := len(source[0])
	for i, pos := range source {
		if len(pos) != dim {
			return nil, fmt.Errorf("emd: source position %d has %d coordinates, want %d", i, len(pos), dim)
		}
	}
	for j, pos := range target {
		if len(pos) != dim {
			return nil, fmt.Errorf("emd: target position %d has %d coordinates, want %d", j, len(pos), dim)
		}
	}
	if p < 1 {
		return nil, fmt.Errorf("emd: PositionCost requires p >= 1, got %g", p)
	}
	c := vecmath.NewMatrix(len(source), len(target))
	for i, a := range source {
		for j, b := range target {
			c[i][j] = vecmath.Lp(a, b, p)
		}
	}
	return c, nil
}

// GridPositions returns the centers of a rows x cols tiling, row-major,
// as 2-D positions. Together with PositionCost it yields the tiled
// image ground distances of the paper's bioinformatics scenario
// (e.g. a 12x8 tiling producing 96 bins).
func GridPositions(rows, cols int) [][]float64 {
	out := make([][]float64, 0, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			out = append(out, []float64{float64(r), float64(c)})
		}
	}
	return out
}

// GridCost is a convenience wrapper building the Lp ground distance
// over a rows x cols tiling.
func GridCost(rows, cols int, p float64) (CostMatrix, error) {
	pos := GridPositions(rows, cols)
	return PositionCost(pos, pos, p)
}

// ThresholdedCost returns a copy of c with every entry capped at t.
// Thresholded ground distances are common in robust retrieval: beyond
// some dissimilarity all moves are "equally far". Capping preserves
// metric properties for t > 0 and keeps the EMD comparable.
func ThresholdedCost(c CostMatrix, t float64) (CostMatrix, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if t <= 0 {
		return nil, fmt.Errorf("emd: threshold must be positive, got %g", t)
	}
	out := vecmath.NewMatrix(c.Rows(), c.Cols())
	for i, row := range c {
		for j, v := range row {
			out[i][j] = math.Min(v, t)
		}
	}
	return out, nil
}

// ScaleCost returns a copy of c with every entry multiplied by s >= 0.
// By EMD monotony (Theorem 2), scaling the ground distance scales every
// EMD value by the same factor.
func ScaleCost(c CostMatrix, s float64) (CostMatrix, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		return nil, fmt.Errorf("emd: invalid scale %g", s)
	}
	out := vecmath.NewMatrix(c.Rows(), c.Cols())
	for i, row := range c {
		for j, v := range row {
			out[i][j] = v * s
		}
	}
	return out, nil
}
