package emdsearch

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"emdsearch/internal/persist"
)

// indexOpts returns a forced-index engine configuration over the
// shared seeded dataset.
func indexOpts(kind string) Options {
	return Options{ReducedDims: 8, SampleSize: 10, IndexKind: kind}
}

func TestNewEngineIndexKindValidation(t *testing.T) {
	if _, err := NewEngine(LinearCost(4), Options{ReducedDims: 2, IndexKind: "bogus"}); err == nil {
		t.Error("accepted unknown IndexKind")
	}
	for _, kind := range []string{IndexAuto, IndexMTree, IndexVPTree, IndexOff} {
		if _, err := NewEngine(LinearCost(4), Options{ReducedDims: 2, IndexKind: kind}); err != nil {
			t.Errorf("rejected valid IndexKind %q: %v", kind, err)
		}
	}
}

// TestIndexDeleteThenKNN is the Delete-then-query regression through
// the index path: soft-deleted items are in the persisted-shape tree
// but must be filtered at emission, so they can never surface in any
// answer, and the answers must match a scan engine with the same
// deletes bit for bit.
func TestIndexDeleteThenKNN(t *testing.T) {
	const n, k = 120, 6
	for _, kind := range []string{IndexMTree, IndexVPTree} {
		t.Run(kind, func(t *testing.T) {
			scan, queries := buildEngine(t, Options{ReducedDims: 8, SampleSize: 10}, n)
			eng, _ := buildEngine(t, indexOpts(kind), n)
			// First query builds the tree over all live items...
			if _, _, err := eng.KNN(queries[0], k); err != nil {
				t.Fatal(err)
			}
			// ...then deletes punch holes the traversal must skip.
			dead := []int{3, 11, 42, 43, 77}
			for _, id := range dead {
				if err := eng.Delete(id); err != nil {
					t.Fatal(err)
				}
				if err := scan.Delete(id); err != nil {
					t.Fatal(err)
				}
			}
			for qi, q := range queries {
				want, _, err := scan.KNN(q, k)
				if err != nil {
					t.Fatal(err)
				}
				got, stats, err := eng.KNN(q, k)
				if err != nil {
					t.Fatal(err)
				}
				if !stats.IndexUsed {
					t.Fatalf("query %d: forced %s index not used", qi, kind)
				}
				sameResults(t, kind, "KNN", got, want)
				for _, r := range got {
					for _, id := range dead {
						if r.Index == id {
							t.Fatalf("query %d returned deleted item %d", qi, id)
						}
					}
				}
			}
		})
	}
}

// TestIndexAutoDeclinesSmallCorpus: auto mode must not pay tree-build
// or traversal costs on a corpus far below the break-even size — the
// normal stage chain serves the query.
func TestIndexAutoDeclinesSmallCorpus(t *testing.T) {
	eng, queries := buildEngine(t, Options{ReducedDims: 8, SampleSize: 10, IndexKind: IndexAuto}, 100)
	_, stats, err := eng.KNN(queries[0], 5)
	if err != nil {
		t.Fatal(err)
	}
	if stats.IndexUsed {
		t.Fatal("auto mode used an index on a 100-item corpus")
	}
	if m := eng.Metrics(); m.IndexBuilds != 0 {
		t.Fatalf("IndexBuilds = %d, want 0", m.IndexBuilds)
	}
	checkStageAccounting(t, eng, stats, []string{"Q-Red-IM", "Red-IM", "Red-EMD"})
}

// TestIndexOffDisables: IndexOff must behave exactly like the
// pre-index engine.
func TestIndexOffDisables(t *testing.T) {
	eng, queries := buildEngine(t, Options{ReducedDims: 8, SampleSize: 10, IndexKind: IndexOff}, 60)
	_, stats, err := eng.KNN(queries[0], 5)
	if err != nil {
		t.Fatal(err)
	}
	if stats.IndexUsed || eng.Metrics().IndexBuilds != 0 {
		t.Fatal("IndexOff still built or used an index")
	}
}

// TestIndexIncrementalReuse: mutations must not throw the M-tree away.
// Adding items reuses the stashed tree via clone-and-insert; the
// grown index answers identically to a scan engine over the same data.
func TestIndexIncrementalReuse(t *testing.T) {
	const n, k = 100, 5
	eng, queries := buildEngine(t, indexOpts(IndexMTree), n)
	scan, _ := buildEngine(t, Options{ReducedDims: 8, SampleSize: 10}, n)
	if _, _, err := eng.KNN(queries[0], k); err != nil {
		t.Fatal(err)
	}
	if m := eng.Metrics(); m.IndexBuilds != 1 || m.IndexReuses != 0 {
		t.Fatalf("after first query: builds=%d reuses=%d, want 1/0", m.IndexBuilds, m.IndexReuses)
	}
	// Grow both engines with identical new items.
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 10; i++ {
		h := randHist(rng, eng.Dim())
		if _, err := eng.Add(fmt.Sprintf("new%d", i), h); err != nil {
			t.Fatal(err)
		}
		if _, err := scan.Add(fmt.Sprintf("new%d", i), h); err != nil {
			t.Fatal(err)
		}
	}
	for _, q := range queries {
		want, _, err := scan.KNN(q, k)
		if err != nil {
			t.Fatal(err)
		}
		got, stats, err := eng.KNN(q, k)
		if err != nil {
			t.Fatal(err)
		}
		if !stats.IndexUsed {
			t.Fatal("index not used after incremental growth")
		}
		sameResults(t, "mtree-grown", "KNN", got, want)
	}
	m := eng.Metrics()
	if m.IndexBuilds != 1 {
		t.Errorf("IndexBuilds = %d, want 1 (growth must reuse, not rebuild)", m.IndexBuilds)
	}
	if m.IndexReuses < 1 {
		t.Errorf("IndexReuses = %d, want >= 1", m.IndexReuses)
	}
	if m.IndexQueries < int64(len(queries)) {
		t.Errorf("IndexQueries = %d, want >= %d", m.IndexQueries, len(queries))
	}
	if m.IndexNodesVisited <= 0 {
		t.Errorf("IndexNodesVisited = %d, want > 0", m.IndexNodesVisited)
	}
}

// TestIndexChurnBackgroundRebuild: deleting past the churn threshold
// triggers a background rebuild that compacts the soft-deleted tail
// out of the tree; queries stay correct before, during and after.
func TestIndexChurnBackgroundRebuild(t *testing.T) {
	const n, k = 90, 4
	eng, queries := buildEngine(t, indexOpts(IndexMTree), n)
	scan, _ := buildEngine(t, Options{ReducedDims: 8, SampleSize: 10}, n)
	if _, _, err := eng.KNN(queries[0], k); err != nil {
		t.Fatal(err)
	}
	// Delete 40% of the corpus — far past the 30% churn threshold.
	for id := 0; id < 36; id++ {
		if err := eng.Delete(id); err != nil {
			t.Fatal(err)
		}
		if err := scan.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	// This query reuses the stale tree (still correct: deleted items
	// are skipped at emission) and kicks off the background rebuild.
	want, _, err := scan.KNN(queries[0], k)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := eng.KNN(queries[0], k)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.IndexUsed {
		t.Fatal("index not used on the churned tree")
	}
	sameResults(t, "mtree-churned", "KNN", got, want)

	deadline := time.Now().Add(10 * time.Second)
	for eng.Metrics().IndexBuilds < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("background rebuild did not complete: builds=%d", eng.Metrics().IndexBuilds)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Post-rebuild queries run the compacted tree and stay identical.
	for _, q := range queries {
		want, _, err := scan.KNN(q, k)
		if err != nil {
			t.Fatal(err)
		}
		got, stats, err := eng.KNN(q, k)
		if err != nil {
			t.Fatal(err)
		}
		if !stats.IndexUsed {
			t.Fatal("index not used after rebuild")
		}
		sameResults(t, "mtree-rebuilt", "KNN", got, want)
	}
}

// TestSaveLoadIndexSection round-trips the metric index through the
// version-3 snapshot: the saved tree must be adopted on load (no
// rebuild), the loaded engine must answer identically, and a kind or
// fingerprint mismatch must fall back to a silent rebuild — never an
// error, never a wrong answer.
func TestSaveLoadIndexSection(t *testing.T) {
	opts := indexOpts(IndexMTree)
	eng, queries := buildEngine(t, opts, 80)
	q := queries[0]
	want, _, err := eng.KNN(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	snap, err := persist.ReadSnapshot(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if snap.Index == nil {
		t.Fatal("snapshot of a queried indexed engine carries no index section")
	}
	if snap.Index.Kind != IndexMTree || snap.Index.N != eng.Len() {
		t.Fatalf("index section kind=%q N=%d, want %q/%d", snap.Index.Kind, snap.Index.N, IndexMTree, eng.Len())
	}

	loaded, err := LoadEngine(bytes.NewReader(raw), eng.Cost(), opts)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := loaded.KNN(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.IndexUsed {
		t.Fatal("loaded engine did not use the index")
	}
	sameResults(t, "loaded", "KNN", got, want)
	if m := loaded.Metrics(); m.IndexReuses != 1 || m.IndexBuilds != 0 {
		t.Errorf("loaded engine reuses=%d builds=%d, want 1/0 (saved tree adopted)", m.IndexReuses, m.IndexBuilds)
	}

	// Kind mismatch: the caller now wants a VP-tree; the saved M-tree
	// is silently discarded and a fresh tree built.
	vpOpts := indexOpts(IndexVPTree)
	vpLoaded, err := LoadEngine(bytes.NewReader(raw), eng.Cost(), vpOpts)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err = vpLoaded.KNN(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.IndexUsed {
		t.Fatal("kind-mismatched load did not build a fresh index")
	}
	sameResults(t, "vp-rebuilt", "KNN", got, want)
	if m := vpLoaded.Metrics(); m.IndexReuses != 0 || m.IndexBuilds != 1 {
		t.Errorf("kind mismatch reuses=%d builds=%d, want 0/1", m.IndexReuses, m.IndexBuilds)
	}

	// Fingerprint mismatch: a snapshot whose index section carries a
	// foreign reduction hash decodes fine but must be rebuilt, not
	// trusted.
	stale, err := persist.ReadSnapshot(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	stale.Index.RedHash ^= 0xdeadbeef
	var staleBuf bytes.Buffer
	if err := persist.WriteSnapshot(&staleBuf, stale); err != nil {
		t.Fatal(err)
	}
	staleLoaded, err := LoadEngine(bytes.NewReader(staleBuf.Bytes()), eng.Cost(), opts)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err = staleLoaded.KNN(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "stale-hash", "KNN", got, want)
	if m := staleLoaded.Metrics(); m.IndexReuses != 0 || m.IndexBuilds != 1 {
		t.Errorf("fingerprint mismatch reuses=%d builds=%d, want 0/1 (silent rebuild)", m.IndexReuses, m.IndexBuilds)
	}
}

// snapshotAsV2 rewrites a current-format snapshot as a version-2 file:
// the version word is patched and the sixth (metric index) frame
// dropped. Frame lengths are self-describing.
func snapshotAsV2(t *testing.T, v3 []byte) []byte {
	t.Helper()
	off := len(persist.Magic) + 4
	for f := 0; f < 5; f++ {
		if off+12 > len(v3) {
			t.Fatalf("snapshot too short walking frame %d", f)
		}
		length := binary.LittleEndian.Uint32(v3[off:])
		off += 12 + int(length)
	}
	v2 := append([]byte(nil), v3[:off]...)
	binary.LittleEndian.PutUint32(v2[len(persist.Magic):], 2)
	return v2
}

// TestLoadV2SnapshotIndexCompat: a version-2 file (no index frame)
// must load cleanly; an index-configured engine rebuilds the tree from
// the items and answers identically.
func TestLoadV2SnapshotIndexCompat(t *testing.T) {
	opts := indexOpts(IndexMTree)
	eng, queries := buildEngine(t, opts, 50)
	q := queries[0]
	want, _, err := eng.KNN(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		t.Fatal(err)
	}
	v2 := snapshotAsV2(t, buf.Bytes())

	snap, err := persist.ReadSnapshot(bytes.NewReader(v2))
	if err != nil {
		t.Fatalf("version-2 snapshot rejected: %v", err)
	}
	if snap.Index != nil {
		t.Fatal("version-2 snapshot decoded an index section")
	}
	loaded, err := LoadEngine(bytes.NewReader(v2), eng.Cost(), opts)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := loaded.KNN(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.IndexUsed {
		t.Fatal("v2-loaded engine did not rebuild the index")
	}
	sameResults(t, "v2", "KNN", got, want)
	if m := loaded.Metrics(); m.IndexBuilds != 1 || m.IndexReuses != 0 {
		t.Errorf("v2 load builds=%d reuses=%d, want 1/0", m.IndexBuilds, m.IndexReuses)
	}
}

// TestLoadRejectsBadIndexSection covers CRC-valid but semantically
// damaged index sections: the frame decodes fine, so only load-time
// re-validation stands between the bytes and a structurally broken
// tree in the query path. Every case must fail with ErrCorrupt.
func TestLoadRejectsBadIndexSection(t *testing.T) {
	opts := indexOpts(IndexMTree)
	eng, _ := buildEngine(t, opts, 40)
	if _, _, err := eng.KNN(randHist(rand.New(rand.NewSource(3)), eng.Dim()), 3); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	fresh := func() *persist.Snapshot {
		s, err := persist.ReadSnapshot(bytes.NewReader(good))
		if err != nil {
			t.Fatal(err)
		}
		if s.Index == nil {
			t.Fatal("fixture carries no index section")
		}
		return s
	}
	cases := []struct {
		name   string
		mutate func(s *persist.Snapshot)
	}{
		{"unknown kind", func(s *persist.Snapshot) { s.Index.Kind = "rtree" }},
		{"coverage mismatch", func(s *persist.Snapshot) { s.Index.N-- }},
		{"negative deleted count", func(s *persist.Snapshot) { s.Index.DeletedAtBuild = -1 }},
		{"garbage blob", func(s *persist.Snapshot) { s.Index.Blob = []byte{0xff, 0x00, 0x13} }},
		{"truncated blob", func(s *persist.Snapshot) { s.Index.Blob = s.Index.Blob[:len(s.Index.Blob)/2] }},
	}
	for _, c := range cases {
		s := fresh()
		c.mutate(s)
		var mut bytes.Buffer
		if err := persist.WriteSnapshot(&mut, s); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadEngine(bytes.NewReader(mut.Bytes()), eng.Cost(), opts); err == nil {
			t.Errorf("%s: load accepted a damaged index section", c.name)
		}
	}
	if _, err := LoadEngine(bytes.NewReader(good), eng.Cost(), opts); err != nil {
		t.Fatalf("unmutated snapshot rejected: %v", err)
	}
}

// TestFourPointGateRejectsNonSupermetric drives the engine's sampled
// four-point gate directly: the C4 cycle's shortest-path metric is a
// genuine metric without the four-point property, so the gate must
// refuse it, while a line metric (isometrically embeddable in R) must
// pass.
func TestFourPointGateRejectsNonSupermetric(t *testing.T) {
	c4 := func(i, j int) float64 {
		d := i - j
		if d < 0 {
			d = -d
		}
		if 4-d < d {
			d = 4 - d
		}
		return float64(d)
	}
	rng := rand.New(rand.NewSource(7))
	if fourPointHolds([]int{0, 1, 2, 3}, c4, rng) {
		t.Error("gate accepted the C4 shortest-path metric")
	}
	line := func(i, j int) float64 { return math.Abs(float64(i - j)) }
	ids := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	if !fourPointHolds(ids, line, rand.New(rand.NewSource(8))) {
		t.Error("gate rejected a line metric, which embeds in R")
	}
}

// TestTortureSnapshotIndexFlipMatrix repeats the snapshot flip matrix
// over a version-3 file carrying the metric-index section, so the
// damage sweep covers the gob-encoded tree frame too. Every flip must
// fail typed — a flip the CRC forgave would plant a structurally
// broken tree into the candidate generator.
func TestTortureSnapshotIndexFlipMatrix(t *testing.T) {
	d := 8
	cost := LinearCost(d)
	rng := rand.New(rand.NewSource(83))
	opts := Options{ReducedDims: 4, SampleSize: 6, IndexKind: IndexMTree}
	eng, err := NewEngine(cost, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := eng.Add(fmt.Sprintf("q%d", i), randHist(rng, d)); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Build(); err != nil {
		t.Fatal(err)
	}
	// Query once so the engine stashes the built tree for Save.
	if _, _, err := eng.KNN(randHist(rng, d), 3); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	if snap, err := persist.ReadSnapshot(bytes.NewReader(good)); err != nil || snap.Index == nil {
		t.Fatalf("fixture snapshot carries no index section (err=%v)", err)
	}

	for i := 0; i < len(good); i++ {
		mut := append([]byte(nil), good...)
		mut[i] ^= 0xff
		_, err := LoadEngine(bytes.NewReader(mut), cost, opts)
		if err == nil {
			t.Fatalf("flip at byte %d: load accepted a damaged snapshot", i)
		}
		if !typedPersistErr(err) {
			t.Fatalf("flip at byte %d: err = %v, want a typed persistence error", i, err)
		}
	}
}

// TestVPTreeAddDefersRebuild is the satellite-1 regression: the
// VP-tree has no incremental insert, so a single Add used to force a
// synchronous full rebuild inside the very next snapshot build — a
// latency spike linear in n on the query that happened to trigger it.
// The grown corpus must instead be served by the scan for that
// snapshot while the rebuild runs in the background.
func TestVPTreeAddDefersRebuild(t *testing.T) {
	const n, k = 100, 5
	eng, queries := buildEngine(t, indexOpts(IndexVPTree), n)
	scan, _ := buildEngine(t, Options{ReducedDims: 8, SampleSize: 10}, n)
	syncBuilds := 0
	eng.testHookSyncIndexBuild = func(string) { syncBuilds++ }

	if _, _, err := eng.KNN(queries[0], k); err != nil {
		t.Fatal(err)
	}
	if syncBuilds != 1 {
		t.Fatalf("first query ran %d synchronous builds, want 1", syncBuilds)
	}

	// Grow both engines identically; the next query must NOT pay a
	// synchronous rebuild.
	rng := rand.New(rand.NewSource(41))
	h := randHist(rng, eng.Dim())
	if _, err := eng.Add("new", h); err != nil {
		t.Fatal(err)
	}
	if _, err := scan.Add("new", h); err != nil {
		t.Fatal(err)
	}
	want, _, err := scan.KNN(queries[0], k)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := eng.KNN(queries[0], k)
	if err != nil {
		t.Fatal(err)
	}
	if syncBuilds != 1 {
		t.Fatalf("Add->KNN ran %d synchronous builds, want 1 (rebuild must be deferred)", syncBuilds)
	}
	if stats.IndexUsed {
		t.Fatal("deferred snapshot still claims an index")
	}
	sameResults(t, "vptree-deferred", "KNN", got, want)
	if m := eng.Metrics(); m.IndexDeferredBuilds < 1 {
		t.Fatalf("IndexDeferredBuilds = %d, want >= 1", m.IndexDeferredBuilds)
	}

	// The background rebuild lands, and the index returns with
	// identical answers.
	deadline := time.Now().Add(10 * time.Second)
	for eng.Metrics().IndexBuilds < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("background rebuild did not complete: builds=%d", eng.Metrics().IndexBuilds)
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, q := range queries {
		want, _, err := scan.KNN(q, k)
		if err != nil {
			t.Fatal(err)
		}
		got, stats, err := eng.KNN(q, k)
		if err != nil {
			t.Fatal(err)
		}
		if !stats.IndexUsed {
			t.Fatal("index not used after the background rebuild")
		}
		sameResults(t, "vptree-regrown", "KNN", got, want)
	}
	if syncBuilds != 1 {
		t.Errorf("total synchronous builds = %d, want 1", syncBuilds)
	}
}

// TestIntrinsicEstimateCached is the satellite-2 regression: the
// auto-mode intrinsic-dimensionality estimate (512 sampled pairs of
// reduced-EMD solves) used to rerun on every snapshot rebuild even
// when (n, deleted, reduction) — which pin it exactly — were
// unchanged. Snapshot invalidations that change nothing relevant must
// hit the cache; mutations that change the key must recompute.
func TestIntrinsicEstimateCached(t *testing.T) {
	const d = 8
	cost := LinearCost(d)
	eng, err := NewEngine(cost, Options{ReducedDims: 4, SampleSize: 6, IndexKind: IndexAuto, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	// indexAutoMinN live items, so the auto gate reaches the estimate.
	for i := 0; i < indexAutoMinN+8; i++ {
		if _, err := eng.Add("", randHist(rng, d)); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Build(); err != nil {
		t.Fatal(err)
	}
	evals := 0
	eng.testHookIntrinsicEval = func() { evals++ }

	q := randHist(rng, d)
	if _, _, err := eng.KNN(q, 3); err != nil {
		t.Fatal(err)
	}
	first := evals
	if first == 0 {
		t.Fatal("first snapshot build evaluated no intrinsic-dimensionality pairs")
	}

	// Invalidate the snapshot without touching items, deletes or the
	// reduction: the rebuilt pipeline must reuse the cached estimate.
	for i := 0; i < 3; i++ {
		eng.mu.Lock()
		eng.snap = nil
		eng.mu.Unlock()
		if _, _, err := eng.KNN(q, 3); err != nil {
			t.Fatal(err)
		}
	}
	if evals != first {
		t.Fatalf("unchanged fingerprint recomputed the estimate: %d evaluations, want %d", evals, first)
	}

	// A mutation that changes the key must recompute.
	if err := eng.Delete(0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.KNN(q, 3); err != nil {
		t.Fatal(err)
	}
	if evals <= first {
		t.Fatalf("changed fingerprint did not recompute the estimate (evals still %d)", evals)
	}
}

// TestIndexRebuildFailureClearsLatch is the satellite-3 regression: a
// background index rebuild that dies — here by injected panic — must
// release the e.indexRebuilding latch and count the failure, or every
// future deferred/churn rebuild is silently disabled for the engine's
// lifetime. A subsequent rebuild must then succeed.
func TestIndexRebuildFailureClearsLatch(t *testing.T) {
	const n, k = 100, 5
	eng, queries := buildEngine(t, indexOpts(IndexVPTree), n)
	scan, _ := buildEngine(t, Options{ReducedDims: 8, SampleSize: 10}, n)
	var rebuilds atomic.Int32
	eng.testHookIndexRebuild = func() {
		if rebuilds.Add(1) == 1 {
			panic("injected rebuild failure")
		}
	}
	if _, _, err := eng.KNN(queries[0], k); err != nil {
		t.Fatal(err)
	}

	// Grow the corpus: the next query defers to a background rebuild,
	// which panics.
	rng := rand.New(rand.NewSource(42))
	h := randHist(rng, eng.Dim())
	if _, err := eng.Add("boom", h); err != nil {
		t.Fatal(err)
	}
	if _, err := scan.Add("boom", h); err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.KNN(queries[0], k); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for eng.Metrics().IndexRebuildFailures < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("injected rebuild failure was never counted")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The latch must be free again: the next snapshot rebuild (another
	// grow) kicks a fresh background rebuild, which succeeds and
	// restores the index.
	h = randHist(rng, eng.Dim())
	if _, err := eng.Add("again", h); err != nil {
		t.Fatal(err)
	}
	if _, err := scan.Add("again", h); err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.KNN(queries[0], k); err != nil {
		t.Fatal(err)
	}
	for eng.Metrics().IndexBuilds < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("rebuild after a failed one never ran: latch leaked (builds=%d, rebuild calls=%d)",
				eng.Metrics().IndexBuilds, rebuilds.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
	want, _, err := scan.KNN(queries[0], k)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := eng.KNN(queries[0], k)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.IndexUsed {
		t.Fatal("index not used after the recovered rebuild")
	}
	sameResults(t, "vptree-recovered", "KNN", got, want)
}
