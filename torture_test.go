package emdsearch

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"emdsearch/internal/persist"
)

// The recovery torture harness. Every test here simulates crashes and
// disk damage at the granularity of single bytes and asserts the one
// durability contract that matters: recovery either reproduces exactly
// the acknowledged pre-crash state (items, soft-deletes, KNN answers)
// or fails with a typed error. It must never panic and never return a
// silently diverged engine.

// tortureOp is one scripted mutation: an Add when del is false, a
// Delete of id when del is true.
type tortureOp struct {
	del   bool
	id    int
	label string
	vec   Histogram
}

// tortureScript builds a deterministic mutation sequence: adds
// interleaved with deletes of earlier ids.
func tortureScript(rng *rand.Rand, d, adds int) []tortureOp {
	var ops []tortureOp
	next := 0
	for i := 0; i < adds; i++ {
		ops = append(ops, tortureOp{label: fmt.Sprintf("item-%d", next), vec: randHist(rng, d)})
		next++
		// Every third add is followed by a delete of an earlier item.
		if i%3 == 2 {
			ops = append(ops, tortureOp{del: true, id: next - 2})
		}
	}
	return ops
}

// applyOps replays ops[:k] onto a fresh engine without any logging,
// producing the reference state for a crash after the k-th
// acknowledged mutation.
func applyOps(t *testing.T, cost CostMatrix, ops []tortureOp, k int) *Engine {
	t.Helper()
	e, err := NewEngine(cost, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops[:k] {
		if op.del {
			if err := e.Delete(op.id); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := e.Add(op.label, op.vec); err != nil {
				t.Fatal(err)
			}
		}
	}
	return e
}

// runTortureScript executes the script against a WAL-backed engine,
// returning the engine, the raw log bytes, and the acknowledged log
// size after each mutation (sizes[k] = bytes on disk once ops[:k] are
// acknowledged; sizes[0] is the preamble).
func runTortureScript(t *testing.T, cost CostMatrix, ops []tortureOp, walPath string) (*Engine, []byte, []int64) {
	t.Helper()
	eng, err := NewEngine(cost, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.OpenWAL(walPath); err != nil {
		t.Fatal(err)
	}
	sizes := []int64{walSize(t, walPath)}
	for _, op := range ops {
		if op.del {
			if err := eng.Delete(op.id); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := eng.Add(op.label, op.vec); err != nil {
				t.Fatal(err)
			}
		}
		sizes = append(sizes, walSize(t, walPath))
	}
	if err := eng.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(raw)) != sizes[len(sizes)-1] {
		t.Fatalf("log is %d bytes, acknowledged size is %d", len(raw), sizes[len(sizes)-1])
	}
	return eng, raw, sizes
}

func walSize(t *testing.T, path string) int64 {
	t.Helper()
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return st.Size()
}

// TestTortureWALCutMatrix cuts the log after every single byte —
// simulating a crash at every possible point of every append — and
// demands that recovery lands exactly on the longest fully
// acknowledged mutation prefix, with identical KNN answers.
func TestTortureWALCutMatrix(t *testing.T) {
	d := 6
	cost := LinearCost(d)
	rng := rand.New(rand.NewSource(61))
	ops := tortureScript(rng, d, 12)
	dir := t.TempDir()
	_, raw, sizes := runTortureScript(t, cost, ops, filepath.Join(dir, "full.wal"))
	probe := randHist(rng, d)
	missingSnap := filepath.Join(dir, "missing.snap")
	cutPath := filepath.Join(dir, "cut.wal")

	// references[k] is the expected engine after ops[:k].
	references := make([]*Engine, len(ops)+1)
	for k := range references {
		references[k] = applyOps(t, cost, ops, k)
	}

	for cut := 0; cut <= len(raw); cut++ {
		if err := os.WriteFile(cutPath, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rec, stats, err := RecoverEngine(missingSnap, cutPath, cost, Options{})
		if err != nil {
			t.Fatalf("cut at %d: recovery failed: %v", cut, err)
		}
		// The expected surviving prefix: every mutation whose
		// acknowledged log size fits inside the cut.
		k := 0
		for k+1 < len(sizes) && sizes[k+1] <= int64(cut) {
			k++
		}
		wantTorn := int64(cut) - sizes[k]
		if int64(cut) < sizes[0] {
			wantTorn = int64(cut) // crash inside the preamble: all torn
		}
		if stats.TornBytes != wantTorn {
			t.Fatalf("cut at %d: TornBytes = %d, want %d", cut, stats.TornBytes, wantTorn)
		}
		assertSameState(t, rec, references[k], probe)
	}
}

// TestTortureWALFlipMatrix flips every single byte of the finished log
// in turn. A flip is damage, not a crash: recovery must refuse with a
// typed error every time — truncating or absorbing damaged records
// would be silent data loss.
func TestTortureWALFlipMatrix(t *testing.T) {
	d := 6
	cost := LinearCost(d)
	rng := rand.New(rand.NewSource(67))
	ops := tortureScript(rng, d, 10)
	dir := t.TempDir()
	_, raw, _ := runTortureScript(t, cost, ops, filepath.Join(dir, "full.wal"))
	missingSnap := filepath.Join(dir, "missing.snap")
	flipPath := filepath.Join(dir, "flip.wal")

	for i := 0; i < len(raw); i++ {
		mut := append([]byte(nil), raw...)
		mut[i] ^= 0xff
		if err := os.WriteFile(flipPath, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		_, _, err := RecoverEngine(missingSnap, flipPath, cost, Options{})
		if err == nil {
			t.Fatalf("flip at byte %d: recovery accepted a damaged log", i)
		}
		if !typedPersistErr(err) {
			t.Fatalf("flip at byte %d: err = %v, want a typed persistence error", i, err)
		}
	}
}

// TestTortureSnapshotFlipMatrix flips every byte of a snapshot file.
// Loading must fail typed every time — including flips in the magic,
// which reroute the stream to the legacy decoder and still must not
// surface a raw gob error.
func TestTortureSnapshotFlipMatrix(t *testing.T) {
	d := 6
	cost := LinearCost(d)
	rng := rand.New(rand.NewSource(71))
	eng, err := NewEngine(cost, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := eng.Add(fmt.Sprintf("s%d", i), randHist(rng, d)); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Delete(2); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	for i := 0; i < len(good); i++ {
		mut := append([]byte(nil), good...)
		mut[i] ^= 0xff
		_, err := LoadEngine(bytes.NewReader(mut), cost, Options{})
		if err == nil {
			t.Fatalf("flip at byte %d: load accepted a damaged snapshot", i)
		}
		if !typedPersistErr(err) {
			t.Fatalf("flip at byte %d: err = %v, want a typed persistence error", i, err)
		}
	}
}

// TestTortureCheckpointCrashPoints simulates a crash after every
// mutation of a live run that checkpoints midway, by snapshotting the
// on-disk state (log + latest checkpoint file) at each step and
// recovering from the copies. Whatever the interleaving of checkpoint
// and mutations, recovery must land on the exact acknowledged state.
func TestTortureCheckpointCrashPoints(t *testing.T) {
	d := 6
	cost := LinearCost(d)
	rng := rand.New(rand.NewSource(73))
	ops := tortureScript(rng, d, 12)
	checkpointAfter := map[int]bool{4: true, 9: true}
	probe := randHist(rng, d)

	dir := t.TempDir()
	walPath := filepath.Join(dir, "engine.wal")
	snapPath := filepath.Join(dir, "engine.snap")
	scratch := filepath.Join(dir, "crash")
	if err := os.Mkdir(scratch, 0o755); err != nil {
		t.Fatal(err)
	}

	eng, err := NewEngine(cost, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.OpenWAL(walPath); err != nil {
		t.Fatal(err)
	}
	for k, op := range ops {
		if op.del {
			if err := eng.Delete(op.id); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := eng.Add(op.label, op.vec); err != nil {
				t.Fatal(err)
			}
		}
		if checkpointAfter[k] {
			if err := eng.Checkpoint(snapPath); err != nil {
				t.Fatal(err)
			}
		}

		// Crash here: freeze the on-disk state and recover from it.
		crashWAL := filepath.Join(scratch, "crash.wal")
		crashSnap := filepath.Join(scratch, "crash.snap")
		copyIfExists(t, walPath, crashWAL)
		copyIfExists(t, snapPath, crashSnap)
		rec, _, err := RecoverEngine(crashSnap, crashWAL, cost, Options{})
		if err != nil {
			t.Fatalf("crash after op %d: recovery failed: %v", k, err)
		}
		assertSameState(t, rec, applyOps(t, cost, ops, k+1), probe)
	}
	if err := eng.CloseWAL(); err != nil {
		t.Fatal(err)
	}
}

// copyIfExists copies src to dst, removing dst if src does not exist.
func copyIfExists(t *testing.T, src, dst string) {
	t.Helper()
	data, err := os.ReadFile(src)
	if os.IsNotExist(err) {
		if err := os.Remove(dst); err != nil && !os.IsNotExist(err) {
			t.Fatal(err)
		}
		return
	}
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestTortureSnapshotQuantFlipMatrix repeats the snapshot flip matrix
// over a file that carries the version-2 quantized-filter section, so
// the damage sweep covers the int16 column frames too. Every flip must
// fail typed — a flip the CRC somehow forgave would plant a wrong
// filter into the first stage and silently corrupt query answers.
func TestTortureSnapshotQuantFlipMatrix(t *testing.T) {
	d := 8
	cost := LinearCost(d)
	rng := rand.New(rand.NewSource(79))
	eng, err := NewEngine(cost, Options{ReducedDims: 4, SampleSize: 6})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := eng.Add(fmt.Sprintf("q%d", i), randHist(rng, d)); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Build(); err != nil {
		t.Fatal(err)
	}
	// Query once so the engine stashes the quantized filter for Save.
	if _, _, err := eng.KNN(randHist(rng, d), 3); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	if snap, err := persist.ReadSnapshot(bytes.NewReader(good)); err != nil || snap.Quant == nil {
		t.Fatalf("fixture snapshot carries no quantized filter (err=%v)", err)
	}

	for i := 0; i < len(good); i++ {
		mut := append([]byte(nil), good...)
		mut[i] ^= 0xff
		_, err := LoadEngine(bytes.NewReader(mut), cost, Options{ReducedDims: 4, SampleSize: 6})
		if err == nil {
			t.Fatalf("flip at byte %d: load accepted a damaged snapshot", i)
		}
		if !typedPersistErr(err) {
			t.Fatalf("flip at byte %d: err = %v, want a typed persistence error", i, err)
		}
	}
}
