package emdsearch

import (
	"errors"
	"io"
	"math/rand"
	"path/filepath"
	"testing"

	"emdsearch/internal/persist"
	"emdsearch/internal/persist/faultio"
)

// faultWALFile is a persist.WALFile whose writes go through a
// fault-injecting writer and whose rollback truncates fail — the exact
// combination that latches a WAL broken (a failed append that cannot
// be rolled back).
type faultWALFile struct {
	w io.Writer
}

func (f *faultWALFile) Write(p []byte) (int, error) { return f.w.Write(p) }
func (f *faultWALFile) Sync() error                 { return nil }
func (f *faultWALFile) Truncate(int64) error        { return faultio.ErrInjected }
func (f *faultWALFile) Close() error                { return nil }

// TestReopenWALAfterBreak drives an engine's WAL into the broken state
// with injected write+truncate faults, asserts mutations fail loudly
// with ErrWALBroken while the in-memory state stays consistent, then
// heals the log with ReopenWAL and verifies durable logging resumes —
// including that a post-recovery crash replay sees every acknowledged
// mutation and nothing else.
func TestReopenWALAfterBreak(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const d = 4
	dir := t.TempDir()
	walPath := filepath.Join(dir, "wal")

	eng, err := NewEngine(LinearCost(d), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.OpenWAL(walPath); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := eng.Add("pre", randHist(rng, d)); err != nil {
			t.Fatalf("pre-fault add %d: %v", i, err)
		}
	}

	// Swap in a file whose writes fail immediately and whose rollback
	// truncate fails too; keep the real handle to close it.
	real := eng.wal.SwapFileForTest(&faultWALFile{w: &faultio.Writer{W: io.Discard, Budget: 0}})

	if _, err := eng.Add("broken", randHist(rng, d)); err == nil {
		t.Fatal("Add with failing WAL file succeeded")
	} else if !errors.Is(err, ErrWALBroken) {
		t.Fatalf("first failed add: err = %v, want ErrWALBroken", err)
	}
	// The latch is sticky: every further mutation fails the same way,
	// and none of them leaks into memory.
	if _, err := eng.Add("still-broken", randHist(rng, d)); !errors.Is(err, ErrWALBroken) {
		t.Fatalf("second failed add: err = %v, want ErrWALBroken", err)
	}
	if eng.wal.Broken() == nil {
		t.Fatal("WAL did not latch broken")
	}
	if eng.Len() != 3 {
		t.Fatalf("engine holds %d items after failed adds, want 3", eng.Len())
	}

	if err := real.Close(); err != nil {
		t.Fatalf("close displaced wal file: %v", err)
	}
	if err := eng.ReopenWAL(); err != nil {
		t.Fatalf("ReopenWAL: %v", err)
	}
	if _, err := eng.Add("post", randHist(rng, d)); err != nil {
		t.Fatalf("post-recovery add: %v", err)
	}
	if err := eng.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	// Crash-replay the log: exactly the 4 acknowledged adds, in order.
	recs, scan, err := persist.ReplayWAL(walPath, persist.WALHeader{Dim: d, CostHash: persist.CostHash(eng.Cost())})
	if err != nil {
		t.Fatalf("replay after recovery: %v", err)
	}
	if scan.TornBytes != 0 {
		t.Fatalf("recovered log has %d torn bytes, want 0", scan.TornBytes)
	}
	if len(recs) != 4 {
		t.Fatalf("recovered log holds %d records, want 4", len(recs))
	}
	if recs[3].Label != "post" {
		t.Fatalf("last record label %q, want post", recs[3].Label)
	}
	rec, _, err := RecoverEngine(filepath.Join(dir, "nosnap"), walPath, eng.Cost(), Options{})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	assertSameState(t, rec, eng, randHist(rng, d))
}

// TestReopenWALWithoutWAL documents the error contract: reopening an
// engine that never attached a log fails rather than silently creating
// one.
func TestReopenWALWithoutWAL(t *testing.T) {
	eng, err := NewEngine(LinearCost(3), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.ReopenWAL(); err == nil {
		t.Fatal("ReopenWAL without an attached WAL succeeded")
	}
}
