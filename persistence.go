package emdsearch

import (
	"bufio"
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"time"

	"emdsearch/internal/cascadeplan"
	"emdsearch/internal/colscan"
	"emdsearch/internal/core"
	"emdsearch/internal/db"
	"emdsearch/internal/mtree"
	"emdsearch/internal/persist"
	"emdsearch/internal/shardset"
	"emdsearch/internal/vptree"
)

// Typed persistence errors. Every failure of Save, SaveFile,
// LoadEngine, LoadEngineFile, OpenWAL, Checkpoint and RecoverEngine
// that stems from the state of a file (rather than plain I/O) matches
// exactly one of these under errors.Is.
var (
	// ErrCorrupt reports damaged persisted bytes: failed checksums,
	// torn snapshot sections, undecodable payloads, or decoded data
	// that fails validation (NaN/negative/unnormalized histograms,
	// malformed reductions, out-of-range ids).
	ErrCorrupt = persist.ErrCorrupt
	// ErrVersion reports a snapshot or WAL written in a format version
	// this build does not read.
	ErrVersion = persist.ErrVersion
	// ErrConfigMismatch reports a snapshot or WAL that belongs to an
	// engine configured differently (dimensionality, ground-distance
	// matrix, reduction d') than the one loading it.
	ErrConfigMismatch = persist.ErrConfigMismatch
	// ErrWALBroken reports a write-ahead log latched unusable: an append
	// failed AND rolling the partial frame back failed too, so the
	// file's tail state is unknown. Every further logged mutation fails
	// with this error until ReopenWAL succeeds (reopening re-scans the
	// file and truncates the damage). The engine's in-memory state stays
	// correct throughout — a mutation that failed durability was never
	// applied.
	ErrWALBroken = persist.ErrWALBroken
)

// costHash fingerprints the engine's ground-distance matrix for the
// snapshot and WAL headers.
func (e *Engine) costHash() uint64 { return persist.CostHash(e.cost) }

// snapshotRecordLocked assembles the persistable engine state: items,
// registered and engine reductions, and the soft-deleted set. The
// caller must hold e.mu. Vectors are shared, not copied — they are
// immutable once added, so the record stays valid after the lock is
// released.
func (e *Engine) snapshotRecordLocked() *persist.Snapshot {
	n := e.store.Len()
	items := make([]persist.Item, n)
	for i := 0; i < n; i++ {
		it := e.store.Item(i)
		items[i] = persist.Item{ID: it.ID, Label: it.Label, Vector: it.Vector}
	}
	var named map[string]persist.Reduction
	if reds := e.store.Reductions(); len(reds) > 0 {
		named = make(map[string]persist.Reduction, len(reds))
		for name, r := range reds {
			named[name] = persist.Reduction{Assign: r.Assignment(), Reduced: r.ReducedDims()}
		}
	}
	var engRed *persist.Reduction
	redDims := 0
	if e.red != nil {
		engRed = &persist.Reduction{Assign: e.red.Assignment(), Reduced: e.red.ReducedDims()}
		redDims = e.red.ReducedDims()
	}
	deleted := make([]int, 0, len(e.deleted))
	for id := range e.deleted {
		deleted = append(deleted, id)
	}
	sort.Ints(deleted)
	// Persist the quantized columnar filter when the stash matches the
	// current item count (it can lag behind after mutations that have
	// not been followed by a query; the filter is an optimization, so
	// a stale one is simply omitted rather than saved dead). The slices
	// are shared with the immutable Quantized, never mutated.
	var quant *persist.QuantSection
	if qz := e.savedQuant; qz != nil && qz.Len() == n {
		quant = &persist.QuantSection{
			N:       qz.Len(),
			Dims:    qz.Dims(),
			Block:   qz.BlockSize(),
			CostMax: qz.CostMax(),
			RedHash: e.savedQuantHash,
			Scales:  qz.Scales(),
			Margins: qz.Margins(),
			Cols:    qz.Data(),
		}
	}
	// Persist the metric index under the same policy as the quantized
	// filter: only when the stash covers the current item count, so a
	// restored tree never needs patching — it is either reusable as-is
	// (or by appending new items) or rebuilt.
	var index *persist.IndexSection
	if si := e.savedIndex; si != nil && si.n == n {
		var blob bytes.Buffer
		var encErr error
		switch si.kind {
		case IndexMTree:
			encErr = gob.NewEncoder(&blob).Encode(si.mt.Flatten())
		case IndexVPTree:
			encErr = gob.NewEncoder(&blob).Encode(si.vt.Flatten())
		}
		if encErr == nil && blob.Len() > 0 {
			index = &persist.IndexSection{
				Kind:           si.kind,
				N:              si.n,
				DeletedAtBuild: si.deletedAtBuild,
				RedHash:        si.redHash,
				Blob:           blob.Bytes(),
			}
		}
	}
	// Persist the reduction cascade and the auto-cascade plan. Unlike
	// the quantized filter and the index, these are not rebuildable
	// optimizations — re-deriving a cascade consumes randomness and an
	// auto plan encodes observed workload history — so they are saved
	// whenever present and validated structurally on load.
	var cascade *persist.CascadeSection
	if len(e.cascade) > 1 || e.plan != nil {
		cascade = &persist.CascadeSection{}
		if len(e.cascade) > 1 {
			cascade.Levels = make([]persist.Reduction, len(e.cascade))
			for i, r := range e.cascade {
				cascade.Levels[i] = persist.Reduction{Assign: r.Assignment(), Reduced: r.ReducedDims()}
			}
		}
		if e.plan != nil {
			cascade.PlanLevels = append([]int(nil), e.plan.Levels...)
			cascade.PlanID = e.plan.ID
			cascade.Auto = e.opts.AutoCascade
		}
	}
	return &persist.Snapshot{
		Header: persist.Header{
			Dim:         e.store.Dim(),
			CostHash:    e.costHash(),
			Items:       n,
			ReducedDims: redDims,
		},
		Items:           items,
		Reductions:      named,
		EngineReduction: engRed,
		Deleted:         deleted,
		Quant:           quant,
		Index:           index,
		Cascade:         cascade,
	}
}

// Save writes the engine's full persistent state — items, reduction,
// and the soft-deleted set — to w in the versioned, checksummed
// snapshot format (magic, format version, configuration fingerprint,
// per-section CRC32 trailers). Prefer SaveFile for writing to disk: it
// additionally guarantees the file is replaced atomically.
func (e *Engine) Save(w io.Writer) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := persist.WriteSnapshot(w, e.snapshotRecordLocked()); err != nil {
		return fmt.Errorf("emdsearch: save: %w", err)
	}
	return nil
}

// SaveFile writes the engine's state to path atomically: the snapshot
// is streamed to a temp file in the same directory, fsynced, and
// renamed over path. A crash at any point leaves either the previous
// snapshot or the complete new one — never a torn file.
func (e *Engine) SaveFile(path string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.saveFileLocked(path)
}

func (e *Engine) saveFileLocked(path string) error {
	s := e.snapshotRecordLocked()
	err := persist.AtomicWriteFile(path, func(w io.Writer) error {
		return persist.WriteSnapshot(w, s)
	})
	if err != nil {
		return fmt.Errorf("emdsearch: save %s: %w", path, err)
	}
	e.metrics.snapshotSaved()
	return nil
}

// LoadEngine restores an engine saved with Save or SaveFile; cost and
// opts must match the saved engine's configuration (they are not
// serialized — the snapshot carries a fingerprint that is verified,
// and a mismatch fails with ErrConfigMismatch). Damaged input fails
// with ErrCorrupt and a future format with ErrVersion; loaded
// histograms are re-validated, so a tampered snapshot can never plant
// invalid data in the validated refinement path.
//
// Streams that do not start with the snapshot magic are read as legacy
// (version-0) gob databases, as written by emdgen and by Engine.Save
// before the versioned format existed. The legacy format carries no
// checksums and no soft-deleted set; undecodable legacy bytes fail
// with ErrCorrupt.
//
// Snapshots carry the full reduction cascade and the auto-cascade
// plan (format version 4). A Hierarchy engine whose configured levels
// match the saved chain, and any AutoCascade engine, resume the full
// cascade immediately; otherwise — including files written before
// version 4 — the engine answers queries exactly after loading but
// runs the single-level filter until Build re-derives the cascade (or
// the auto planner re-plans one).
func LoadEngine(r io.Reader, cost CostMatrix, opts Options) (*Engine, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(persist.Magic))
	if err != nil || !bytes.Equal(head, []byte(persist.Magic)) {
		return loadLegacyEngine(br, cost, opts)
	}
	snap, err := persist.ReadSnapshot(br)
	if err != nil {
		return nil, fmt.Errorf("emdsearch: load: %w", err)
	}
	return engineFromSnapshot(snap, cost, opts)
}

// LoadEngineFile restores an engine from a snapshot file written by
// SaveFile (or Save, or a legacy gob file).
func LoadEngineFile(path string, cost CostMatrix, opts Options) (*Engine, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("emdsearch: load %s: %w", path, err)
	}
	defer f.Close()
	e, err := LoadEngine(f, cost, opts)
	if err != nil {
		return nil, fmt.Errorf("emdsearch: load %s: %w", path, err)
	}
	return e, nil
}

// engineFromSnapshot validates a decoded snapshot against the caller's
// configuration and materializes the engine. All content failures are
// ErrCorrupt; all configuration disagreements are ErrConfigMismatch.
func engineFromSnapshot(s *persist.Snapshot, cost CostMatrix, opts Options) (*Engine, error) {
	e, err := NewEngine(cost, opts)
	if err != nil {
		return nil, err
	}
	if s.Header.Dim != e.Dim() {
		return nil, fmt.Errorf("emdsearch: %w: snapshot stores %d-dimensional histograms, cost matrix is %dx%d",
			ErrConfigMismatch, s.Header.Dim, e.Dim(), e.Dim())
	}
	if s.Header.CostHash != e.costHash() {
		return nil, fmt.Errorf("emdsearch: %w: snapshot cost-matrix fingerprint %016x does not match the supplied cost matrix (%016x)",
			ErrConfigMismatch, s.Header.CostHash, e.costHash())
	}
	for i, it := range s.Items {
		if it.ID != i {
			return nil, fmt.Errorf("emdsearch: %w: item %d carries id %d", ErrCorrupt, i, it.ID)
		}
		// store.Add re-runs full operand validation: dimensionality,
		// non-negativity, finiteness, mass normalization.
		if _, err := e.store.Add(it.Label, it.Vector); err != nil {
			return nil, fmt.Errorf("emdsearch: %w: snapshot item %d: %v", ErrCorrupt, i, err)
		}
	}
	for name, rr := range s.Reductions {
		red, err := core.NewReduction(rr.Assign, rr.Reduced)
		if err != nil {
			return nil, fmt.Errorf("emdsearch: %w: snapshot reduction %q: %v", ErrCorrupt, name, err)
		}
		if err := e.store.Precompute(name, red); err != nil {
			return nil, fmt.Errorf("emdsearch: %w: snapshot reduction %q: %v", ErrCorrupt, name, err)
		}
	}
	if s.EngineReduction != nil {
		red, err := core.NewReduction(s.EngineReduction.Assign, s.EngineReduction.Reduced)
		if err != nil {
			return nil, fmt.Errorf("emdsearch: %w: snapshot engine reduction: %v", ErrCorrupt, err)
		}
		if red.OriginalDims() != e.Dim() {
			return nil, fmt.Errorf("emdsearch: %w: snapshot engine reduction covers %d dimensions, want %d",
				ErrCorrupt, red.OriginalDims(), e.Dim())
		}
		// Under AutoCascade, Options.ReducedDims is the planner's
		// starting point rather than a contract: a re-plan may have
		// re-derived the finest level at a different d', and that is
		// exactly the state a snapshot preserves. Skip the exact-match
		// check there; everywhere else a disagreement is a misconfig.
		if opts.ReducedDims != 0 && red.ReducedDims() != e.opts.ReducedDims && !opts.AutoCascade {
			return nil, fmt.Errorf("emdsearch: %w: saved reduction has d'=%d, options request %d",
				ErrConfigMismatch, red.ReducedDims(), e.opts.ReducedDims)
		}
		e.red = red
	}
	for _, id := range s.Deleted {
		if id < 0 || id >= e.store.Len() {
			return nil, fmt.Errorf("emdsearch: %w: deleted id %d out of range [0, %d)", ErrCorrupt, id, e.store.Len())
		}
		if e.deleted == nil {
			e.deleted = make(map[int]bool, len(s.Deleted))
		}
		e.deleted[id] = true
	}
	if s.Quant != nil {
		// Revalidate every structural invariant of the quantized filter
		// before stashing it: a CRC-valid but semantically damaged
		// section must fail the load, never reach a scan. Whether the
		// stash is actually reused is decided at pipeline build time by
		// matching its geometry and reduction fingerprint.
		if s.Quant.N != e.store.Len() {
			return nil, fmt.Errorf("emdsearch: %w: quantized filter covers %d items, snapshot carries %d",
				ErrCorrupt, s.Quant.N, e.store.Len())
		}
		qz, err := colscan.RestoreQuantized(s.Quant.N, s.Quant.Dims, s.Quant.Block,
			s.Quant.CostMax, s.Quant.Scales, s.Quant.Margins, s.Quant.Cols)
		if err != nil {
			return nil, fmt.Errorf("emdsearch: %w: quantized filter: %v", ErrCorrupt, err)
		}
		e.savedQuant, e.savedQuantHash = qz, s.Quant.RedHash
	}
	if s.Index != nil {
		si, err := restoreIndexSection(s.Index, e.store.Len())
		if err != nil {
			return nil, fmt.Errorf("emdsearch: %w: metric index: %v", ErrCorrupt, err)
		}
		e.savedIndex = si
	}
	if s.Cascade != nil {
		levels, planLevels, planID, err := restoreCascadeSection(s.Cascade, e.red, e.Dim())
		if err != nil {
			return nil, fmt.Errorf("emdsearch: %w: cascade: %v", ErrCorrupt, err)
		}
		// Adoption policy: an AutoCascade engine takes both the chain
		// and the plan (the planner resumes from the persisted state and
		// re-plans on drift); a Hierarchy engine takes the chain only
		// when it matches its configured levels exactly; anyone else
		// drops the section and runs the single-level filter until Build
		// re-derives — the answers are exact either way.
		switch {
		case e.opts.AutoCascade:
			if len(levels) > 1 {
				e.cascade = levels
			}
			e.plan = &cascadeplan.Plan{Levels: planLevels, ID: planID}
			e.metrics.planActive(planLevels, planID)
		case len(e.opts.Hierarchy) > 1 && hierarchyMatches(levels, e.opts.Hierarchy):
			e.cascade = levels
		}
	}
	return e, nil
}

// restoreCascadeSection validates a persisted cascade section and
// materializes its levels. A CRC-valid but semantically damaged
// section must fail the load, never reach a filter: every level is
// re-validated structurally, the finest level must be byte-identical
// to the engine reduction, successive levels must be strictly coarser
// AND nested (same-group-stays-same-group — the property the
// lower-bound proof rests on), and a persisted plan must fingerprint
// to its own levels. When the section carries no explicit plan (a
// Hierarchy-configured engine wrote it), the plan is synthesized from
// the level dimensionalities so an AutoCascade reader starts from a
// truthful incumbent.
func restoreCascadeSection(cs *persist.CascadeSection, engRed *core.Reduction, dim int) ([]*core.Reduction, []int, uint64, error) {
	if len(cs.Levels) == 0 && len(cs.PlanLevels) == 0 {
		return nil, nil, 0, fmt.Errorf("section carries neither levels nor a plan")
	}
	if engRed == nil {
		return nil, nil, 0, fmt.Errorf("cascade without an engine reduction")
	}
	var levels []*core.Reduction
	if n := len(cs.Levels); n > 0 {
		if n < 2 {
			return nil, nil, 0, fmt.Errorf("cascade of %d level", n)
		}
		levels = make([]*core.Reduction, n)
		for i, rr := range cs.Levels {
			red, err := core.NewReduction(rr.Assign, rr.Reduced)
			if err != nil {
				return nil, nil, 0, fmt.Errorf("level %d: %v", i, err)
			}
			if red.OriginalDims() != dim {
				return nil, nil, 0, fmt.Errorf("level %d covers %d dimensions, want %d", i, red.OriginalDims(), dim)
			}
			levels[i] = red
		}
		if levels[0].ReducedDims() != engRed.ReducedDims() || !equalLevels(levels[0].Assignment(), engRed.Assignment()) {
			return nil, nil, 0, fmt.Errorf("finest cascade level disagrees with the engine reduction")
		}
		for i := 1; i < n; i++ {
			fine, coarse := levels[i-1], levels[i]
			if coarse.ReducedDims() >= fine.ReducedDims() {
				return nil, nil, 0, fmt.Errorf("level %d has d'=%d, not coarser than level %d (d'=%d)",
					i, coarse.ReducedDims(), i-1, fine.ReducedDims())
			}
			// Nesting: two original bins merged by the finer level must
			// be merged by the coarser one too, i.e. the coarse group is
			// a function of the fine group.
			fa, ca := fine.Assignment(), coarse.Assignment()
			group := make([]int, fine.ReducedDims())
			for g := range group {
				group[g] = -1
			}
			for b := range fa {
				if group[fa[b]] == -1 {
					group[fa[b]] = ca[b]
				} else if group[fa[b]] != ca[b] {
					return nil, nil, 0, fmt.Errorf("level %d is not a nested coarsening of level %d", i, i-1)
				}
			}
		}
	}
	planLevels := append([]int(nil), cs.PlanLevels...)
	planID := cs.PlanID
	if len(planLevels) > 0 {
		if err := cascadeplan.ValidateLevels(planLevels, dim); err != nil {
			return nil, nil, 0, fmt.Errorf("plan: %v", err)
		}
		if want := cascadeplan.PlanID(planLevels); planID != want {
			return nil, nil, 0, fmt.Errorf("plan fingerprint %016x does not match its levels (%016x)", planID, want)
		}
		want := []int{engRed.ReducedDims()}
		if levels != nil {
			want = make([]int, len(levels))
			for i, red := range levels {
				want[len(levels)-1-i] = red.ReducedDims()
			}
		}
		if !equalLevels(planLevels, want) {
			return nil, nil, 0, fmt.Errorf("plan levels %v disagree with the persisted chain %v", planLevels, want)
		}
	} else {
		planLevels = make([]int, len(levels))
		for i, red := range levels {
			planLevels[len(levels)-1-i] = red.ReducedDims()
		}
		planID = cascadeplan.PlanID(planLevels)
	}
	return levels, planLevels, planID, nil
}

// hierarchyMatches reports whether restored cascade levels carry
// exactly the configured Hierarchy dimensionalities (both finest
// first).
func hierarchyMatches(levels []*core.Reduction, hierarchy []int) bool {
	if len(levels) != len(hierarchy) {
		return false
	}
	for i, red := range levels {
		if red.ReducedDims() != hierarchy[i] {
			return false
		}
	}
	return true
}

// restoreIndexSection validates and materializes a persisted metric
// index. A CRC-valid but semantically damaged section must fail the
// load, never reach a traversal; RestoreFlat re-checks every
// structural invariant of the tree. Whether the stash is actually
// reused is decided at pipeline build time by matching its kind and
// reduction fingerprint — a stale index is silently rebuilt.
func restoreIndexSection(is *persist.IndexSection, items int) (*savedIndex, error) {
	if is.N != items {
		return nil, fmt.Errorf("covers %d items, snapshot carries %d", is.N, items)
	}
	if is.DeletedAtBuild < 0 || is.DeletedAtBuild > is.N {
		return nil, fmt.Errorf("deleted-at-build %d out of range [0, %d]", is.DeletedAtBuild, is.N)
	}
	si := &savedIndex{
		kind:           is.Kind,
		n:              is.N,
		deletedAtBuild: is.DeletedAtBuild,
		redHash:        is.RedHash,
	}
	dec := gob.NewDecoder(bytes.NewReader(is.Blob))
	switch is.Kind {
	case IndexMTree:
		var f mtree.Flat
		if err := dec.Decode(&f); err != nil {
			return nil, fmt.Errorf("decode m-tree: %v", err)
		}
		mt, err := mtree.RestoreFlat(&f, items, rand.New(rand.NewSource(0x6d726573)))
		if err != nil {
			return nil, err
		}
		si.mt = mt
	case IndexVPTree:
		var f vptree.Flat
		if err := dec.Decode(&f); err != nil {
			return nil, fmt.Errorf("decode vp-tree: %v", err)
		}
		vt, err := vptree.RestoreFlat(&f, items)
		if err != nil {
			return nil, err
		}
		si.vt = vt
	default:
		return nil, fmt.Errorf("unknown index kind %q", is.Kind)
	}
	return si, nil
}

// loadLegacyEngine is the version-0 fallback: a raw gob database
// stream from before the versioned snapshot format. db.Load re-runs
// full validation over every decoded histogram and wraps decode
// failures in ErrCorrupt.
func loadLegacyEngine(r io.Reader, cost CostMatrix, opts Options) (*Engine, error) {
	e, err := NewEngine(cost, opts)
	if err != nil {
		return nil, err
	}
	store, err := db.Load(r)
	if err != nil {
		return nil, fmt.Errorf("emdsearch: load: %w", err)
	}
	if store.Dim() != e.Dim() {
		return nil, fmt.Errorf("emdsearch: %w: saved data has %d dimensions, cost matrix has %d",
			ErrConfigMismatch, store.Dim(), e.Dim())
	}
	e.store = store
	if red, ok := store.Reduction("engine"); ok {
		if red.ReducedDims() != e.opts.ReducedDims && e.opts.ReducedDims != 0 {
			return nil, fmt.Errorf("emdsearch: %w: saved reduction has d'=%d, options request %d",
				ErrConfigMismatch, red.ReducedDims(), e.opts.ReducedDims)
		}
		e.red = red
	}
	return e, nil
}

// OpenWAL attaches a write-ahead log at path to the engine: every
// subsequent Add and Delete is validated, appended to the log,
// fsynced, and only then applied in memory, so acknowledged mutations
// survive a crash and are replayed by RecoverEngine over the last
// snapshot.
//
// A fresh or empty file is initialized with the log preamble
// (including the engine's configuration fingerprint). An existing file
// is integrity-checked first: it must carry the same fingerprint
// (ErrConfigMismatch), complete-frame damage fails with ErrCorrupt, a
// torn final record — the signature of a crash mid-append — is
// truncated away, and a log holding mutations beyond the engine's
// current state is refused (run RecoverEngine first, then reopen).
func (e *Engine) OpenWAL(path string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.wal != nil {
		return fmt.Errorf("emdsearch: engine already has an open WAL at %s", e.wal.Path())
	}
	w, scan, err := persist.OpenWAL(path, persist.WALHeader{Dim: e.store.Dim(), CostHash: e.costHash()})
	if err != nil {
		return fmt.Errorf("emdsearch: open WAL: %w", err)
	}
	if scan.MaxAddID >= e.store.Len() {
		cerr := w.Close()
		return fmt.Errorf("emdsearch: WAL %s holds mutations beyond the engine's %d items; recover with RecoverEngine before reopening (close: %v)",
			path, e.store.Len(), cerr)
	}
	e.wal = w
	return nil
}

// ReopenWAL recovers a broken write-ahead log in place: it closes the
// current log file and reopens the same path, re-running the open-time
// integrity scan (which truncates any torn tail the failed rollback
// left behind). On success the engine resumes durable logging exactly
// where the last acknowledged mutation left off — the log's valid
// prefix always equals the acknowledged mutations, because a mutation
// whose append failed was never applied in memory either.
//
// It is safe to call on a healthy WAL too (the scan is a no-op then),
// and callers typically invoke it with backoff after Add/Delete starts
// failing with ErrWALBroken — transient storage faults (full disk,
// remounted volume) heal, permanent ones keep failing here and keep
// the engine read-only-durable rather than silently non-durable.
func (e *Engine) ReopenWAL() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.wal == nil {
		return fmt.Errorf("emdsearch: ReopenWAL: engine has no WAL attached")
	}
	path := e.wal.Path()
	// Close the old handle first; its buffered state is unusable and a
	// close error on a broken file adds nothing actionable.
	_ = e.wal.Close()
	e.wal = nil
	w, scan, err := persist.OpenWAL(path, persist.WALHeader{Dim: e.store.Dim(), CostHash: e.costHash()})
	if err != nil {
		return fmt.Errorf("emdsearch: reopen WAL: %w", err)
	}
	if scan.MaxAddID >= e.store.Len() {
		cerr := w.Close()
		return fmt.Errorf("emdsearch: WAL %s holds mutations beyond the engine's %d items; recover with RecoverEngine before reopening (close: %v)",
			path, e.store.Len(), cerr)
	}
	e.wal = w
	return nil
}

// ReopenWALRetry is ReopenWAL under a jittered capped exponential
// backoff: up to attempts tries (<= 0 defaults to 10), sleeping a
// uniformly jittered delay drawn from the 1ms, 2ms, 4ms ... schedule
// capped at 256ms between them. The jitter desynchronizes many
// processes healing a shared disk fault at once. It returns nil as
// soon as one reopen succeeds, ctx.Err() if the context ends first,
// and otherwise the last reopen error.
func (e *Engine) ReopenWALRetry(ctx context.Context, attempts int) error {
	if attempts <= 0 {
		attempts = 10
	}
	b := &shardset.Backoff{Base: time.Millisecond, Cap: 256 * time.Millisecond}
	var err error
	for i := 0; i < attempts; i++ {
		if err = e.ReopenWAL(); err == nil {
			return nil
		}
		if i == attempts-1 {
			break // no point sleeping after the final failure
		}
		if !b.Sleep(ctx, i, 0) {
			return fmt.Errorf("emdsearch: ReopenWALRetry: %w (last reopen error: %v)", ctx.Err(), err)
		}
	}
	return err
}

// CloseWAL detaches and closes the engine's write-ahead log. Further
// mutations are no longer logged. Closing an engine without an open
// WAL is a no-op.
func (e *Engine) CloseWAL() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.wal == nil {
		return nil
	}
	err := e.wal.Close()
	e.wal = nil
	return err
}

// Checkpoint writes a fresh snapshot to path (atomically, like
// SaveFile) and then resets the write-ahead log, bounding replay work
// at the next recovery. The snapshot is durable before the log is
// truncated, and WAL replay is idempotent over snapshot contents, so a
// crash between the two steps recovers correctly: the replayed records
// are recognized as already applied and skipped.
//
// Checkpoint holds the engine's write lock for the duration of the
// file write; concurrent queries that already hold a pipeline snapshot
// proceed, new queries block until the checkpoint completes.
func (e *Engine) Checkpoint(path string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.saveFileLocked(path); err != nil {
		return err
	}
	if e.wal != nil {
		if err := e.wal.Reset(); err != nil {
			return fmt.Errorf("emdsearch: checkpoint: rotate WAL: %w", err)
		}
	}
	e.metrics.checkpointed()
	return nil
}

// RecoverStats reports what RecoverEngine found and did.
type RecoverStats struct {
	// SnapshotLoaded is false when no snapshot file existed and
	// recovery started from an empty engine.
	SnapshotLoaded bool
	// WALRecords is the number of log records applied on top of the
	// snapshot.
	WALRecords int
	// WALSkipped counts records recognized as already contained in the
	// snapshot (a crash between Checkpoint's snapshot write and its
	// log rotation leaves such records; replay is idempotent).
	WALSkipped int
	// TornBytes counts trailing log bytes discarded as an append torn
	// by a crash; the mutation they belonged to was never acknowledged.
	TornBytes int64
}

// RecoverEngine rebuilds an engine after a crash: it loads the last
// good snapshot from snapshotPath (an absent file starts from an empty
// engine; a damaged one fails with ErrCorrupt rather than guessing),
// then replays the write-ahead log at walPath over it, truncating a
// torn final record. Replay is idempotent: records the snapshot
// already contains are skipped, so recovery is correct no matter where
// between Checkpoint's two steps a crash landed. Either both paths may
// point at files from the same engine lineage, or the respective file
// may not exist; a log that skips past the snapshot's state (a missing
// or foreign snapshot) fails with ErrCorrupt, and configuration
// disagreements fail with ErrConfigMismatch.
//
// The returned engine has no open WAL; call OpenWAL(walPath) — usually
// after a Checkpoint — to resume logging.
func RecoverEngine(snapshotPath, walPath string, cost CostMatrix, opts Options) (*Engine, *RecoverStats, error) {
	stats := &RecoverStats{}
	var e *Engine
	if _, err := os.Stat(snapshotPath); err == nil {
		e, err = LoadEngineFile(snapshotPath, cost, opts)
		if err != nil {
			return nil, nil, err
		}
		stats.SnapshotLoaded = true
	} else if os.IsNotExist(err) {
		e, err = NewEngine(cost, opts)
		if err != nil {
			return nil, nil, err
		}
	} else {
		return nil, nil, fmt.Errorf("emdsearch: recover: stat snapshot: %w", err)
	}
	if walPath == "" {
		return e, stats, nil
	}
	if _, err := os.Stat(walPath); os.IsNotExist(err) {
		return e, stats, nil
	} else if err != nil {
		return nil, nil, fmt.Errorf("emdsearch: recover: stat WAL: %w", err)
	}
	recs, scan, err := persist.ReplayWAL(walPath, persist.WALHeader{Dim: e.Dim(), CostHash: persist.CostHash(cost)})
	if err != nil {
		return nil, nil, fmt.Errorf("emdsearch: recover: %w", err)
	}
	stats.TornBytes = scan.TornBytes
	for i, rec := range recs {
		switch rec.Op {
		case persist.WALAdd:
			switch {
			case rec.ID < e.Len():
				stats.WALSkipped++
			case rec.ID == e.Len():
				if _, err := e.Add(rec.Label, rec.Vector); err != nil {
					return nil, nil, fmt.Errorf("emdsearch: recover: %w: WAL record %d (add %d): %v", ErrCorrupt, i, rec.ID, err)
				}
				stats.WALRecords++
			default:
				return nil, nil, fmt.Errorf("emdsearch: recover: %w: WAL record %d adds item %d but the snapshot ends at %d — snapshot and log do not belong together",
					ErrCorrupt, i, rec.ID, e.Len())
			}
		case persist.WALDelete:
			if rec.ID < 0 || rec.ID >= e.Len() {
				return nil, nil, fmt.Errorf("emdsearch: recover: %w: WAL record %d deletes unknown item %d", ErrCorrupt, i, rec.ID)
			}
			if e.Deleted(rec.ID) {
				stats.WALSkipped++
				continue
			}
			if err := e.Delete(rec.ID); err != nil {
				return nil, nil, fmt.Errorf("emdsearch: recover: %w: WAL record %d (delete %d): %v", ErrCorrupt, i, rec.ID, err)
			}
			stats.WALRecords++
		default:
			return nil, nil, fmt.Errorf("emdsearch: recover: %w: WAL record %d has unknown op %d", ErrCorrupt, i, rec.Op)
		}
	}
	e.metrics.walReplayed(stats.WALRecords)
	return e, stats, nil
}
