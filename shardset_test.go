package emdsearch

import (
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"emdsearch/internal/data"
)

// buildShardPair builds a ShardSet and a single reference engine
// holding the identical corpus in identical insertion order, plus
// query histograms. Every identity test compares the two.
func buildShardPair(t *testing.T, shards, n int, setOpts ShardSetOptions) (*ShardSet, *Engine, []Histogram) {
	t.Helper()
	ds, err := data.MusicSpectra(n+5, 16, 9)
	if err != nil {
		t.Fatal(err)
	}
	vecs, queries, err := ds.Split(5)
	if err != nil {
		t.Fatal(err)
	}
	engOpts := Options{ReducedDims: 4, Seed: 1}
	setOpts.Shards = shards
	set, err := NewShardSet(ds.Cost, engOpts, setOpts)
	if err != nil {
		t.Fatal(err)
	}
	single, err := NewEngine(ds.Cost, engOpts)
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range vecs {
		gid, err := set.Add(ds.Items[i].Label, h)
		if err != nil {
			t.Fatal(err)
		}
		if gid != i {
			t.Fatalf("global id %d for insertion %d", gid, i)
		}
		if _, err := single.Add(ds.Items[i].Label, h); err != nil {
			t.Fatal(err)
		}
	}
	if err := set.Build(); err != nil {
		t.Fatal(err)
	}
	if err := single.Build(); err != nil {
		t.Fatal(err)
	}
	return set, single, queries
}

// sameResultBytes asserts two result lists are byte-identical:
// same indices, same Float64bits of every distance.
func sameResultBytes(t *testing.T, tag string, got, want []Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d\n got: %v\nwant: %v", tag, len(got), len(want), got, want)
	}
	for i := range want {
		if got[i].Index != want[i].Index ||
			math.Float64bits(got[i].Dist) != math.Float64bits(want[i].Dist) {
			t.Fatalf("%s pos %d: got {%d %v (%x)}, want {%d %v (%x)}", tag, i,
				got[i].Index, got[i].Dist, math.Float64bits(got[i].Dist),
				want[i].Index, want[i].Dist, math.Float64bits(want[i].Dist))
		}
	}
}

// assertFullCoverage asserts a healthy-path coverage certificate.
func assertFullCoverage(t *testing.T, tag string, cov ShardCoverage, shards, total int) {
	t.Helper()
	if cov.Shards != shards || cov.ShardsOK != shards || cov.ShardsDegraded != 0 ||
		cov.ShardsFailed != 0 || cov.ItemsUncovered != 0 || cov.ItemsTotal != total {
		t.Fatalf("%s: coverage = %+v, want all %d shards OK over %d items", tag, cov, shards, total)
	}
}

// TestShardSetKNNIdentity is the healthy-path identity theorem: for
// every shard count and both threshold modes, scatter-gather KNN
// answers are byte-identical to the single merged engine's.
func TestShardSetKNNIdentity(t *testing.T) {
	ctx := context.Background()
	for _, shards := range []int{1, 2, 3, 4} {
		for _, disable := range []bool{false, true} {
			set, single, queries := buildShardPair(t, shards, 60, ShardSetOptions{DisableSharedThreshold: disable})
			for _, k := range []int{1, 5} {
				for qi, q := range queries {
					want, _, err := single.KNN(q, k)
					if err != nil {
						t.Fatal(err)
					}
					ans, err := set.KNN(ctx, q, k)
					if err != nil {
						t.Fatalf("shards=%d disable=%v q%d: %v", shards, disable, qi, err)
					}
					if ans.Degraded {
						t.Fatalf("shards=%d disable=%v q%d: healthy query degraded: %+v", shards, disable, qi, ans.Coverage)
					}
					tag := "knn"
					sameResultBytes(t, tag, ans.Results, want)
					assertFullCoverage(t, tag, ans.Coverage, shards, set.Len())
				}
			}
		}
	}
}

// TestShardSetRangeIdentity: scatter-gather range answers equal the
// single engine's, including the (distance, id) ordering.
func TestShardSetRangeIdentity(t *testing.T) {
	ctx := context.Background()
	for _, shards := range []int{1, 2, 3} {
		set, single, queries := buildShardPair(t, shards, 60, ShardSetOptions{})
		for qi, q := range queries {
			// A mid-scale eps that returns a nonempty, nontrivial set.
			probe, _, err := single.KNN(q, 8)
			if err != nil {
				t.Fatal(err)
			}
			eps := probe[len(probe)-1].Dist
			want, _, err := single.Range(q, eps)
			if err != nil {
				t.Fatal(err)
			}
			ans, err := set.Range(ctx, q, eps)
			if err != nil {
				t.Fatalf("shards=%d q%d: %v", shards, qi, err)
			}
			if ans.Degraded {
				t.Fatalf("shards=%d q%d: healthy range degraded", shards, qi)
			}
			sameResultBytes(t, "range", ans.Results, want)
			assertFullCoverage(t, "range", ans.Coverage, shards, set.Len())
			if len(want) == 0 {
				t.Fatalf("q%d: degenerate eps, test proves nothing", qi)
			}
		}
	}
}

// TestShardSetBatchKNNIdentity: every batch entry matches the single
// engine, and entries are independent.
func TestShardSetBatchKNNIdentity(t *testing.T) {
	set, single, queries := buildShardPair(t, 3, 50, ShardSetOptions{})
	out, err := set.BatchKNN(context.Background(), queries, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(queries) {
		t.Fatalf("%d batch entries for %d queries", len(out), len(queries))
	}
	for i, r := range out {
		if r.Err != nil {
			t.Fatalf("entry %d: %v", i, r.Err)
		}
		if r.Query != i {
			t.Fatalf("entry %d labeled query %d", i, r.Query)
		}
		want, _, err := single.KNN(queries[i], 4)
		if err != nil {
			t.Fatal(err)
		}
		sameResultBytes(t, "batch", r.Answer.Results, want)
	}
}

// TestShardSetDeleteIdentity: soft deletes route to the right shard
// and the merged answer matches a single engine with the same deletes.
func TestShardSetDeleteIdentity(t *testing.T) {
	set, single, queries := buildShardPair(t, 3, 50, ShardSetOptions{})
	for _, gid := range []int{0, 7, 13, 44} {
		if err := set.Delete(gid); err != nil {
			t.Fatal(err)
		}
		if err := single.Delete(gid); err != nil {
			t.Fatal(err)
		}
	}
	if set.Alive() != single.Alive() {
		t.Fatalf("set alive %d, single alive %d", set.Alive(), single.Alive())
	}
	for _, q := range queries {
		want, _, err := single.KNN(q, 6)
		if err != nil {
			t.Fatal(err)
		}
		ans, err := set.KNN(context.Background(), q, 6)
		if err != nil {
			t.Fatal(err)
		}
		sameResultBytes(t, "delete", ans.Results, want)
		for _, r := range ans.Results {
			if r.Index == 0 || r.Index == 7 || r.Index == 13 || r.Index == 44 {
				t.Fatalf("deleted item %d returned", r.Index)
			}
		}
	}
	if err := set.Delete(set.Len()); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("out-of-range delete: %v", err)
	}
}

// TestShardSetStatsSelfConsistency pins the Refinements accounting:
// the merged totals equal the sum of the per-shard stats, and with
// the shared threshold disabled the per-shard work is deterministic
// across runs (the reference mode for work-count comparisons).
func TestShardSetStatsSelfConsistency(t *testing.T) {
	set, _, queries := buildShardPair(t, 3, 60, ShardSetOptions{DisableSharedThreshold: true})
	q := queries[0]
	var prev *ShardAnswer
	for run := 0; run < 2; run++ {
		ans, err := set.KNN(context.Background(), q, 5)
		if err != nil {
			t.Fatal(err)
		}
		sumRef, sumPulled := 0, 0
		for _, st := range ans.ShardStats {
			if st == nil {
				t.Fatal("healthy shard with nil stats")
			}
			sumRef += st.Refinements
			sumPulled += st.Pulled
		}
		if ans.Stats.Refinements != sumRef || ans.Stats.Pulled != sumPulled {
			t.Fatalf("merged stats (ref=%d pulled=%d) != shard sums (ref=%d pulled=%d)",
				ans.Stats.Refinements, ans.Stats.Pulled, sumRef, sumPulled)
		}
		if prev != nil {
			if ans.Stats.Refinements != prev.Stats.Refinements || ans.Stats.Pulled != prev.Stats.Pulled {
				t.Fatalf("independent-mode work not deterministic: run0 (ref=%d pulled=%d), run1 (ref=%d pulled=%d)",
					prev.Stats.Refinements, prev.Stats.Pulled, ans.Stats.Refinements, ans.Stats.Pulled)
			}
			sameResultBytes(t, "rerun", ans.Results, prev.Results)
		}
		prev = ans
	}

	// Shared-threshold mode returns identical answers (only work
	// counters may differ) and stays self-consistent.
	shared, _, _ := buildShardPair(t, 3, 60, ShardSetOptions{})
	ans, err := shared.KNN(context.Background(), q, 5)
	if err != nil {
		t.Fatal(err)
	}
	sameResultBytes(t, "mode-cross", ans.Results, prev.Results)
	sumRef := 0
	for _, st := range ans.ShardStats {
		sumRef += st.Refinements
	}
	if ans.Stats.Refinements != sumRef {
		t.Fatalf("shared-mode merged refinements %d != shard sum %d", ans.Stats.Refinements, sumRef)
	}
}

// TestShardSetRecoveryRoundTrip: checkpoint + WAL per shard, recover
// with OpenShardSet, answers identical; divergent shard persistence
// is refused.
func TestShardSetRecoveryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	shards := 3
	set, single, queries := buildShardPair(t, shards, 40, ShardSetOptions{})
	if err := set.OpenWAL(dir); err != nil {
		t.Fatal(err)
	}
	if err := set.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}
	// Mutations after the checkpoint live only in the WALs.
	extra := queries[len(queries)-1]
	gid, err := set.Add("late", extra)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := single.Add("late", extra); err != nil {
		t.Fatal(err)
	}
	if err := set.Delete(3); err != nil {
		t.Fatal(err)
	}
	if err := single.Delete(3); err != nil {
		t.Fatal(err)
	}
	if err := set.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	rec, stats, err := OpenShardSet(dir, single.Cost(), Options{ReducedDims: 4, Seed: 1}, ShardSetOptions{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != shards {
		t.Fatalf("%d recover stats for %d shards", len(stats), shards)
	}
	replayed := 0
	for _, st := range stats {
		replayed += st.WALRecords
	}
	if replayed != 2 { // one add + one delete
		t.Fatalf("replayed %d WAL records, want 2", replayed)
	}
	if rec.Len() != set.Len() || rec.Len() != gid+1 {
		t.Fatalf("recovered %d items, want %d", rec.Len(), set.Len())
	}
	if err := rec.Build(); err != nil {
		t.Fatal(err)
	}
	for _, q := range queries[:2] {
		want, _, err := single.KNN(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		ans, err := rec.KNN(context.Background(), q, 5)
		if err != nil {
			t.Fatal(err)
		}
		sameResultBytes(t, "recovered", ans.Results, want)
	}

	// Divergence: wipe one shard's files; the placement invariant
	// breaks and recovery must refuse rather than serve wrong ids.
	if err := os.Remove(filepath.Join(dir, "shard-001.snap")); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "shard-001.wal")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenShardSet(dir, single.Cost(), Options{ReducedDims: 4, Seed: 1}, ShardSetOptions{Shards: shards}); err == nil {
		t.Fatal("recovery accepted diverged shard persistence")
	}
}

// TestShardSetValidation: malformed queries are rejected up front
// with ErrBadQuery and no scatter.
func TestShardSetValidation(t *testing.T) {
	set, _, queries := buildShardPair(t, 2, 20, ShardSetOptions{})
	ctx := context.Background()
	if _, err := set.KNN(ctx, queries[0][:4], 3); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("wrong-dim KNN: %v", err)
	}
	if _, err := set.KNN(ctx, queries[0], 0); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("k=0: %v", err)
	}
	if _, err := set.Range(ctx, queries[0], -1); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("negative eps: %v", err)
	}
	if _, err := set.BatchKNN(ctx, nil, 3, 1); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("empty batch: %v", err)
	}
	if m := set.Metrics(); m.Shards != 2 || m.Items != set.Len() {
		t.Fatalf("metrics = %+v", m)
	}
}
