package emdsearch

import (
	"fmt"
	"math/rand"
	"testing"

	"emdsearch/internal/core"
	"emdsearch/internal/data"
	"emdsearch/internal/emd"
	"emdsearch/internal/eval"
	"emdsearch/internal/flowred"
	"emdsearch/internal/lb"
	"emdsearch/internal/transport"
)

// ---------------------------------------------------------------------
// Experiment benchmarks: one per table/figure of the evaluation (see
// DESIGN.md section 5). Each iteration regenerates the experiment at
// benchmark scale; run cmd/emdbench -scale full for the paper-scale
// numbers. Recall checking is off here (the test suite covers
// correctness); the experiments' own internal lower-bound assertions
// remain active.
// ---------------------------------------------------------------------

func benchConfig() eval.Config {
	c := eval.QuickConfig()
	c.CheckRecall = false
	return c
}

func benchmarkExperiment(b *testing.B, run func(eval.Config) (*eval.Table, error)) {
	c := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		table, err := run(c)
		if err != nil {
			b.Fatal(err)
		}
		if len(table.Rows) == 0 {
			b.Fatal("experiment produced no rows")
		}
	}
}

func BenchmarkFig13RefinementsVsDPrime(b *testing.B) { benchmarkExperiment(b, eval.Fig13) }
func BenchmarkFig14QueryTimeVsDPrime(b *testing.B)   { benchmarkExperiment(b, eval.Fig14) }
func BenchmarkFig15PipelinesRetina(b *testing.B)     { benchmarkExperiment(b, eval.Fig15) }
func BenchmarkFig16PipelinesIRMA(b *testing.B)       { benchmarkExperiment(b, eval.Fig16) }
func BenchmarkFig17SampleSize(b *testing.B)          { benchmarkExperiment(b, eval.Fig17) }
func BenchmarkFig18Scalability(b *testing.B)         { benchmarkExperiment(b, eval.Fig18) }
func BenchmarkFig19KSweep(b *testing.B)              { benchmarkExperiment(b, eval.Fig19) }
func BenchmarkTab1PreprocessingCost(b *testing.B)    { benchmarkExperiment(b, eval.Tab1) }
func BenchmarkTab2Tightness(b *testing.B)            { benchmarkExperiment(b, eval.Tab2) }
func BenchmarkFig20PCAAblation(b *testing.B)         { benchmarkExperiment(b, eval.Fig20) }
func BenchmarkFig21AsymmetricReduction(b *testing.B) { benchmarkExperiment(b, eval.Fig21) }
func BenchmarkFig22RangeQueries(b *testing.B)        { benchmarkExperiment(b, eval.Fig22) }
func BenchmarkFig23MetricIndexVsChain(b *testing.B)  { benchmarkExperiment(b, eval.Fig23) }
func BenchmarkTab3OptimalReduction(b *testing.B)     { benchmarkExperiment(b, eval.Tab3) }
func BenchmarkFig24ApproximateSearch(b *testing.B)   { benchmarkExperiment(b, eval.Fig24) }
func BenchmarkFig25HierarchicalCascade(b *testing.B) { benchmarkExperiment(b, eval.Fig25) }

// ---------------------------------------------------------------------
// Micro-benchmarks of the primitives the experiments are built from.
// ---------------------------------------------------------------------

func randomHistogramB(rng *rand.Rand, d int) emd.Histogram {
	h := make(emd.Histogram, d)
	var sum float64
	for i := range h {
		h[i] = rng.Float64()
		sum += h[i]
	}
	for i := range h {
		h[i] /= sum
	}
	return h
}

// BenchmarkEMD measures the exact EMD at the dimensionalities that
// matter in the paper: the filter sizes (8, 16), the RETINA features
// (96) and the IRMA features (199). The superlinear growth visible
// here is the entire motivation for dimensionality reduction.
func BenchmarkEMD(b *testing.B) {
	for _, d := range []int{8, 16, 32, 64, 96, 199} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			dist, err := emd.NewDist(emd.LinearCost(d))
			if err != nil {
				b.Fatal(err)
			}
			x := randomHistogramB(rng, d)
			y := randomHistogramB(rng, d)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dist.Distance(x, y)
			}
		})
	}
}

// BenchmarkEMDSolvers compares the two exact solvers.
func BenchmarkEMDSolvers(b *testing.B) {
	const d = 64
	rng := rand.New(rand.NewSource(1))
	x := randomHistogramB(rng, d)
	y := randomHistogramB(rng, d)
	p := transport.Problem{Supply: x, Demand: y, Cost: emd.LinearCost(d)}
	b.Run("simplex", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := transport.SolveSimplex(p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ssp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := transport.SolveSSP(p); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkReducedEMD measures the filter distance at typical d'.
func BenchmarkReducedEMD(b *testing.B) {
	const d = 96
	for _, dr := range []int{4, 8, 16, 32} {
		b.Run(fmt.Sprintf("dprime=%d", dr), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			cost := emd.CostMatrix(emd.LinearCost(d))
			r, err := core.Adjacent(d, dr)
			if err != nil {
				b.Fatal(err)
			}
			red, err := core.NewReducedEMD(cost, r, r)
			if err != nil {
				b.Fatal(err)
			}
			xr := r.Apply(randomHistogramB(rng, d))
			yr := r.Apply(randomHistogramB(rng, d))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				red.DistanceReduced(xr, yr)
			}
		})
	}
}

// BenchmarkLBIM measures the independent-minimization filter, the
// cheapest stage of the chain.
func BenchmarkLBIM(b *testing.B) {
	for _, d := range []int{8, 16, 96} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			im, err := lb.NewIM(emd.LinearCost(d))
			if err != nil {
				b.Fatal(err)
			}
			x := randomHistogramB(rng, d)
			y := randomHistogramB(rng, d)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				im.Distance(x, y)
			}
		})
	}
}

// BenchmarkFlowCollection measures the offline preprocessing step of
// the flow-based reduction (|S| full-dimensional EMDs with flows).
func BenchmarkFlowCollection(b *testing.B) {
	ds, err := data.Retina(16, 1)
	if err != nil {
		b.Fatal(err)
	}
	dist, err := emd.NewDist(ds.Cost)
	if err != nil {
		b.Fatal(err)
	}
	sample := ds.Histograms()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := flowred.AverageFlows(sample, dist); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFBOptimize measures the local search itself (flows
// precomputed), FB-Mod vs FB-All.
func BenchmarkFBOptimize(b *testing.B) {
	ds, err := data.Retina(16, 1)
	if err != nil {
		b.Fatal(err)
	}
	dist, err := emd.NewDist(ds.Cost)
	if err != nil {
		b.Fatal(err)
	}
	flows, err := flowred.AverageFlows(ds.Histograms(), dist)
	if err != nil {
		b.Fatal(err)
	}
	const dr = 16
	b.Run("fb-mod", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := flowred.OptimizeMod(flowred.BaseAssignment(ds.Dim), dr, flows, ds.Cost, flowred.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fb-all", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := flowred.OptimizeAll(flowred.BaseAssignment(ds.Dim), dr, flows, ds.Cost, flowred.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEngineKNNParallel measures single-query latency of the
// parallel refinement pool against the sequential path on a
// refinement-heavy workload: high-dimensional spectra (d = 96, where
// one exact EMD costs milliseconds) under a deliberately coarse filter
// (d' = 6), so most of the query is spent in exact refinements — the
// regime Options.Workers targets.
func BenchmarkEngineKNNParallel(b *testing.B) {
	const d = 96
	ds, err := data.MusicSpectra(260, d, 7)
	if err != nil {
		b.Fatal(err)
	}
	vectors, queries, err := ds.Split(4)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, -1} {
		name := "sequential"
		if workers != 1 {
			name = "workers=gomaxprocs"
		}
		b.Run(name, func(b *testing.B) {
			eng, err := NewEngine(ds.Cost, Options{ReducedDims: 6, SampleSize: 24, Workers: workers})
			if err != nil {
				b.Fatal(err)
			}
			for i, h := range vectors {
				if _, err := eng.Add(ds.Items[i].Label, h); err != nil {
					b.Fatal(err)
				}
			}
			if err := eng.Build(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := eng.KNN(queries[i%len(queries)], 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRefineKernel isolates the refinement kernel itself: one
// pooled solver over a stream of random d=32 histogram pairs, the
// legacy validating kernel against the trusted bounded kernel run to
// optimality (warm starts and sparsity reduction active, no aborts).
func BenchmarkRefineKernel(b *testing.B) {
	const d = 32
	rng := rand.New(rand.NewSource(3))
	dist, err := emd.NewDist(emd.LinearCost(d))
	if err != nil {
		b.Fatal(err)
	}
	q := randomHistogramB(rng, d)
	cands := make([]emd.Histogram, 64)
	for i := range cands {
		cands[i] = randomHistogramB(rng, d)
	}
	b.Run("unbounded", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := dist.DistanceValidated(q, cands[i%len(cands)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bounded", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dist.Distance(q, cands[i%len(cands)])
		}
	})
}

// BenchmarkRefineEngineKNN measures end-to-end k-NN latency of the
// threshold-aware refinement kernel against the legacy unbounded one
// on the d=32 music-spectra evaluation configuration (the quick-scale
// config of cmd/emdbench -exp refine). Results are byte-identical by
// the bit-identity contract; only the work per candidate differs.
func BenchmarkRefineEngineKNN(b *testing.B) {
	const d = 32
	ds, err := data.MusicSpectra(305, d, 9)
	if err != nil {
		b.Fatal(err)
	}
	vectors, queries, err := ds.Split(5)
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name      string
		unbounded bool
	}{
		{"unbounded", true},
		{"bounded", false},
	} {
		b.Run(tc.name, func(b *testing.B) {
			opts := Options{ReducedDims: 8, SampleSize: 24, UnboundedRefine: tc.unbounded}
			eng, err := NewEngine(ds.Cost, opts)
			if err != nil {
				b.Fatal(err)
			}
			for i, h := range vectors {
				if _, err := eng.Add(ds.Items[i].Label, h); err != nil {
					b.Fatal(err)
				}
			}
			if err := eng.Build(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := eng.KNN(queries[i%len(queries)], 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineKNN measures end-to-end query latency with and
// without the filter chain on a color-histogram corpus.
func BenchmarkEngineKNN(b *testing.B) {
	ds, err := data.ColorImages(600, 2)
	if err != nil {
		b.Fatal(err)
	}
	vectors, queries, err := ds.Split(4)
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name      string
		dprime    int
		positions bool
	}{
		{"scan", 0, false},
		{"filtered-dprime8", 8, false},
		{"indexed-centroid-dprime8", 8, true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			opts := Options{ReducedDims: tc.dprime, SampleSize: 24}
			if tc.positions {
				opts.Positions = ds.Positions
			}
			eng, err := NewEngine(ds.Cost, opts)
			if err != nil {
				b.Fatal(err)
			}
			for i, h := range vectors {
				if _, err := eng.Add(ds.Items[i].Label, h); err != nil {
					b.Fatal(err)
				}
			}
			if err := eng.Build(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := eng.KNN(queries[i%len(queries)], 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
