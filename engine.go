package emdsearch

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"emdsearch/internal/cascadeplan"
	"emdsearch/internal/cluster"
	"emdsearch/internal/colscan"
	"emdsearch/internal/core"
	"emdsearch/internal/db"
	"emdsearch/internal/emd"
	"emdsearch/internal/flowred"
	"emdsearch/internal/kdtree"
	"emdsearch/internal/lb"
	"emdsearch/internal/persist"
	"emdsearch/internal/search"
	"emdsearch/internal/vecmath"
)

// ReductionMethod selects how the Engine constructs its combining
// reduction matrix.
type ReductionMethod string

const (
	// FBAll is the flow-based reduction with best-move local search
	// (paper Figure 9), initialized from k-medoids. The default and
	// usually the tightest filter.
	FBAll ReductionMethod = "fb-all"
	// FBMod is the flow-based reduction with first-improvement
	// round-robin search (paper Figure 8), initialized from k-medoids.
	// Cheaper to build than FBAll on high-dimensional data.
	FBMod ReductionMethod = "fb-mod"
	// KMedoids is the data-independent clustering reduction (paper
	// Section 3.3); it needs no database sample.
	KMedoids ReductionMethod = "kmedoids"
	// Adjacent merges contiguous runs of dimensions; appropriate for
	// 1-D ordered feature spaces and as a cheap baseline.
	Adjacent ReductionMethod = "adjacent"
)

// Options configures an Engine.
type Options struct {
	// ReducedDims is d', the filter dimensionality. 0 disables
	// filtering: queries degrade to an exact sequential scan.
	ReducedDims int
	// Method selects the reduction heuristic; default FBAll.
	Method ReductionMethod
	// SampleSize is the database sample used for flow collection by
	// the flow-based methods; default 64.
	SampleSize int
	// DisableIMFilter switches off the Red-IM pre-filter stage
	// (enabled by default; it is essentially free and prunes Red-EMD
	// evaluations).
	DisableIMFilter bool
	// DisableQuantizedFilter switches off the int16-quantized columnar
	// pre-filter that by default runs ahead of Red-IM: a branch-free
	// tangent-plane evaluation over per-block quantized columns whose
	// certified error margin keeps it a true lower bound, so answers
	// are bit-identical with it on or off — only the work distribution
	// across stages changes. It is skipped automatically when the
	// Red-IM stage is disabled or a Positions-based ranking replaces
	// the eager first scan. The zero value (enabled) is right for
	// nearly everyone.
	DisableQuantizedFilter bool
	// FilterBlockSize is the item-block length of the columnar filter
	// layout; 0 selects the default (256). Smaller blocks give the
	// quantized filter tighter per-block scales and tangents (better
	// pruning) at slightly more per-block overhead. Exposed mainly for
	// benchmarking; the default is right for nearly everyone.
	FilterBlockSize int
	// ReferenceScan retains the legacy per-item filter representation
	// ([]Histogram with closure-based stages) instead of the columnar
	// layout and batched kernels. Results are bit-identical either
	// way; this exists as the verification baseline for that claim and
	// for benchmarking the columnar speedup.
	ReferenceScan bool
	// AsymmetricQuery keeps the query at full dimensionality in the
	// Red-EMD filter (R1 = identity, R2 = the built reduction;
	// Section 3.2 of the paper). The filter becomes a rectangular
	// d x d' EMD: tighter (fewer refinements) but costlier per
	// evaluation — worthwhile when refinement dominates, i.e. large d.
	// Ignored when a Hierarchy is configured.
	AsymmetricQuery bool
	// Hierarchy configures a multi-level filter cascade (generalizing
	// the fixed factor-4 hierarchy of the prior grid-tiling approach):
	// the listed reduced dimensionalities are built as *nested*
	// reductions (each coarser level merges groups of the finer one),
	// and queries run them coarsest-first. Example: {32, 8, 2} on
	// 96-dimensional data. When set, ReducedDims must be zero or equal
	// to the largest entry.
	Hierarchy []int
	// AutoCascade lets the engine choose the cascade depth and
	// per-level d' itself: it starts from the single ReducedDims level,
	// fits a cost model to the per-stage timings and selectivities
	// flowing through Metrics, and re-plans in the background when the
	// observed selectivity drifts — hot-swapping a freshly built
	// pipeline (possibly with a different finest d' than ReducedDims)
	// without blocking queries. Every planned level is a certified
	// lower bound of the next by construction, so answers are
	// byte-identical across all plans; only the work distribution
	// changes. Engine.Replan forces a synchronous planning pass.
	// Requires ReducedDims > 0; incompatible with Hierarchy (a fixed
	// chain) and AsymmetricQuery (its filter is not a cascade level).
	AutoCascade bool
	// Positions optionally gives the feature-space position of each
	// histogram bin. When set — and only when the cost matrix is the
	// PositionNorm distance between these positions — the engine adds
	// Rubner's centroid lower bound as a near-free first filter stage.
	// The correspondence is verified at Build/first-query time.
	Positions [][]float64
	// PositionNorm is the Lp order of the position-based ground
	// distance (default 2). Ignored without Positions.
	PositionNorm float64
	// IndexKind selects the metric-index candidate generator that can
	// replace the linear filter scan with a best-first tree traversal
	// over the reduced EMD (under the metric closure of its ground
	// matrix, so pruning is sound). Candidates are emitted in
	// nondecreasing lower-bound order, so answers are provably
	// identical to the scan path's. IndexAuto ("") builds an M-tree
	// when the corpus looks indexable and falls back to the scan per
	// query when it does not; IndexMTree/IndexVPTree force a kind;
	// IndexOff disables the stage. Ignored (no index is built) for
	// hierarchical cascades, asymmetric queries and Positions-based
	// rankings, which keep their own orderings.
	IndexKind string
	// FourPoint additionally enables supermetric (four-point property)
	// pruning in the VP-tree traversal. The reduced EMD is not
	// guaranteed supermetric, so the property is verified on sampled
	// data quadruples at build time and the stronger pruning is
	// silently dropped if any sample violates it. Only meaningful with
	// IndexKind == IndexVPTree.
	FourPoint bool
	// Workers bounds the goroutines used for the exact-EMD refinement
	// stage of a single KNN or Range query: 0 or 1 runs sequentially,
	// n > 1 uses up to n goroutines, and a negative value uses
	// GOMAXPROCS. Results are identical to the sequential path; only
	// the work counters in QueryStats may differ slightly. Worthwhile
	// when refinement dominates the query cost (large d); for small,
	// cheap refinements the coordination overhead can outweigh the
	// gain. Independent of BatchKNN's cross-query parallelism — when
	// combining both, keep workers × batch concurrency near GOMAXPROCS.
	Workers int
	// UnboundedRefine disables the threshold-aware refinement kernel:
	// every candidate surviving the filters is refined to optimality
	// with the legacy dense, cold-started, validating solver. Results
	// are byte-identical either way — the bounded kernel only abandons
	// a candidate when a certified lower bound proves it cannot enter
	// the answer — so this exists as an escape hatch and as the
	// baseline for benchmarking the bounded kernel's speedup.
	UnboundedRefine bool
	// Seed drives all randomized components; the default 0 is a valid
	// fixed seed, so runs are reproducible unless the caller varies it.
	Seed int64
	// RefineHook, when set, is invoked at the start of every exact
	// refinement with the candidate's database index. It exists for
	// fault injection and chaos testing: a hook that panics exercises
	// the engine's panic containment exactly as a solver invariant
	// failure would (the query fails with ErrInternal; the process and
	// other queries are unaffected), and a hook that sleeps simulates a
	// slow solve. It runs on refinement worker goroutines and must be
	// safe for concurrent use. Leave nil in production.
	RefineHook func(index int)
}

func (o Options) withDefaults() Options {
	if o.Method == "" {
		o.Method = FBAll
	}
	if o.SampleSize == 0 {
		o.SampleSize = 64
	}
	if o.PositionNorm == 0 {
		o.PositionNorm = 2
	}
	return o
}

// Engine is the high-level similarity-search index: a histogram
// database plus a multistep EMD query processor with a reduced-EMD
// filter chain.
//
// An Engine is safe for concurrent use: any number of goroutines may
// run KNN, Range, Rank, BatchKNN and the other query methods while
// others call Add, Delete or Build. Queries operate on an immutable
// snapshot of the prepared pipeline (reductions, reduced vectors,
// cost matrices); mutations invalidate the snapshot, and the next
// query rebuilds it. A query that started before a mutation completes
// against the state it started with.
type Engine struct {
	opts Options
	cost emd.CostMatrix
	dist *emd.Dist

	// mu guards the mutable index state below. Queries hold it only
	// long enough to obtain the current snapshot (or to install a
	// fresh one); all per-query work happens on the snapshot without
	// any lock held.
	mu      sync.RWMutex
	store   *db.Database
	red     *core.Reduction
	cascade []*core.Reduction // nested hierarchy levels, finest first (nil without Hierarchy)
	deleted map[int]bool      // soft-deleted item ids
	snap    *snapshot         // current immutable query pipeline, nil after mutations
	wal     *persist.WAL      // open write-ahead log, nil when not logging

	// savedQuant is a quantized filter restored from a persisted
	// snapshot, reused by the next pipeline build when it still matches
	// the live data (see reusableQuant); savedQuantHash fingerprints
	// the reduction it was built under.
	savedQuant     *colscan.Quantized
	savedQuantHash uint64

	// savedIndex is the metric index retained across pipeline rebuilds
	// (and restored from persisted snapshots), reused when its
	// fingerprint still matches the live data; indexRebuilding
	// serializes the churn-triggered background rebuild.
	savedIndex      *savedIndex
	indexRebuilding bool

	// savedIntrinsic caches the auto-mode intrinsic-dimensionality
	// estimate across snapshot rebuilds; it is keyed by the same
	// fingerprint that pins the reduced data, so unchanged corpora do
	// not re-pay the 512 sampled metric solves per rebuild.
	savedIntrinsic *savedIntrinsic

	// AutoCascade state: the active plan, the metrics baseline and
	// expected finest-level selectivity at its adoption (the drift
	// window), the query countdown to the next drift check, the latch
	// serializing background re-plans, and the full-dimensional sample
	// flows stashed by Build for deriving replacement reductions.
	plan          *cascadeplan.Plan
	planBase      Metrics
	planExpPulled float64
	planTick      atomic.Int64
	replanning    bool
	buildFlows    [][]float64

	metrics engineMetrics

	// Test hooks (set only by in-package tests, before the engine is
	// shared): fault injection and accounting probes on the index build
	// paths. All nil in production.
	testHookSyncIndexBuild func(kind string) // a tree is built synchronously on the query path
	testHookIntrinsicEval  func()            // one intrinsic-dim metric evaluation
	testHookIndexRebuild   func()            // start of a background rebuild's build phase
}

// snapshot is an immutable view of everything the query path needs:
// the assembled searcher with its filter chain, the original and
// reduced database vectors, the reduction cascade and the derived
// bound evaluators. Once built it is never mutated, so any number of
// concurrent queries can share it without synchronization while
// mutators install a replacement.
type snapshot struct {
	searcher *search.Searcher
	vectors  []Histogram
	labels   []string     // captured at build time; lock-free predicate reads
	deleted  map[int]bool // copied at build time; read-only afterwards
	dist     *emd.Dist
	dim      int

	red      *core.Reduction
	cascade  []*core.Reduction // coarsest first (nil without Hierarchy)
	reduced  *core.ReducedEMD  // finest symmetric lower bound (nil when unreduced)
	redUpper *core.ReducedEMDUpper
	// The finest-level reduced database: columnar by default,
	// per-item slices under Options.ReferenceScan. Exactly one of the
	// two is non-nil when a reduction is built; finestReduced is the
	// layout-independent accessor.
	reducedCols *colscan.Columns
	reducedVecs []Histogram
	// quant is the coarsest level's certified quantized filter, nil
	// when the quantized stage is not in play. Persistence serializes
	// it so a reopened engine skips requantization.
	quant *colscan.Quantized

	// hook is Options.RefineHook, captured at build time; nil outside
	// fault-injection runs.
	hook func(index int)

	// index is the metric-index candidate generator state, nil when no
	// index is attached to this snapshot.
	index *engineIndex

	// greedy hands out per-goroutine clones of the greedy-flow upper
	// bound (its scratch buffer is not safe for concurrent use).
	greedy sync.Pool
}

// refine is the exact-EMD refinement distance over the snapshot's
// vectors, with soft-deleted items at infinity. Snapshot vectors are
// validated on insert and the query once per query, so the fast
// trusted-input kernel applies.
func (s *snapshot) refine(q Histogram, i int) float64 {
	if s.deleted[i] {
		return math.Inf(1)
	}
	if s.hook != nil {
		s.hook(i)
	}
	return s.dist.Distance(q, s.vectors[i])
}

// refineBounded is the threshold-aware refinement: the solver may
// abandon item i once a certified lower bound on its exact distance
// exceeds abortAbove (see emd.DistanceBounded).
func (s *snapshot) refineBounded(q Histogram, i int, abortAbove float64) search.Refinement {
	if s.deleted[i] {
		return search.Refinement{Dist: math.Inf(1)}
	}
	if s.hook != nil {
		s.hook(i)
	}
	r := s.dist.DistanceBounded(q, s.vectors[i], abortAbove)
	return search.Refinement{
		Dist:      r.Value,
		Aborted:   r.Aborted,
		WarmStart: r.WarmStart,
		Rows:      r.Rows,
		Cols:      r.Cols,
	}
}

// refineBoundedIntr is refineBounded with the query's cancel flag
// threaded into the simplex pivot loop: once the flag is set the solve
// stops within one pivot and returns Interrupted with a certified
// lower bound, so a deadline takes effect inside a single large
// refinement instead of only between refinements.
func (s *snapshot) refineBoundedIntr(q Histogram, i int, abortAbove float64, intr *atomic.Bool) search.Refinement {
	if s.deleted[i] {
		return search.Refinement{Dist: math.Inf(1)}
	}
	if s.hook != nil {
		s.hook(i)
	}
	r := s.dist.DistanceBoundedIntr(q, s.vectors[i], abortAbove, intr)
	return search.Refinement{
		Dist:        r.Value,
		Aborted:     r.Aborted,
		Interrupted: r.Interrupted,
		WarmStart:   r.WarmStart,
		Rows:        r.Rows,
		Cols:        r.Cols,
	}
}

// refineUnbounded is the legacy refinement kernel: per-call operand
// validation, full dense shape, cold start, run to optimality. It is
// the Options.UnboundedRefine baseline.
func (s *snapshot) refineUnbounded(q Histogram, i int) float64 {
	if s.deleted[i] {
		return math.Inf(1)
	}
	if s.hook != nil {
		s.hook(i)
	}
	d, err := s.dist.DistanceValidated(q, s.vectors[i])
	if err != nil {
		panic(fmt.Sprintf("emdsearch: refinement failed on validated snapshot data: %v", err))
	}
	return d
}

// greedyUpper returns a goroutine-private greedy upper bound
// evaluator; return it with putGreedy when done.
func (s *snapshot) greedyUpper() *lb.GreedyUpper {
	return s.greedy.Get().(*lb.GreedyUpper)
}

func (s *snapshot) putGreedy(g *lb.GreedyUpper) { s.greedy.Put(g) }

// reducedScratch returns a buffer sized for finestReduced's gather, or
// nil when the snapshot stores per-item slices and needs none. One per
// query loop, not one per item.
func (s *snapshot) reducedScratch() []float64 {
	if s.reducedCols == nil {
		return nil
	}
	return make([]float64, s.reducedCols.Dims())
}

// finestReduced returns item i's finest-level reduced vector,
// gathering from the columnar layout into buf (from reducedScratch)
// or handing out the retained per-item slice under ReferenceScan. The
// values are identical bit-for-bit in both layouts.
func (s *snapshot) finestReduced(i int, buf []float64) Histogram {
	if s.reducedCols == nil {
		return s.reducedVecs[i]
	}
	return s.reducedCols.Gather(i, buf)
}

// NewEngine creates an engine for histograms whose ground distance is
// the given square cost matrix.
func NewEngine(cost CostMatrix, opts Options) (*Engine, error) {
	opts = opts.withDefaults()
	dist, err := emd.NewDist(cost)
	if err != nil {
		return nil, err
	}
	rows, cols := dist.Dims()
	if rows != cols {
		return nil, fmt.Errorf("emdsearch: cost matrix is %dx%d, want square", rows, cols)
	}
	if opts.ReducedDims < 0 || opts.ReducedDims > rows {
		return nil, fmt.Errorf("emdsearch: ReducedDims %d out of range [0, %d]", opts.ReducedDims, rows)
	}
	if !validIndexKind(opts.IndexKind) {
		return nil, fmt.Errorf("emdsearch: IndexKind %q, want one of %q, %q, %q, %q",
			opts.IndexKind, IndexAuto, IndexMTree, IndexVPTree, IndexOff)
	}
	if len(opts.Hierarchy) > 0 {
		sorted := append([]int(nil), opts.Hierarchy...)
		sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
		for i, dr := range sorted {
			if dr < 1 || dr > rows {
				return nil, fmt.Errorf("emdsearch: Hierarchy level %d out of range [1, %d]", dr, rows)
			}
			if i > 0 && dr >= sorted[i-1] {
				return nil, fmt.Errorf("emdsearch: Hierarchy levels must be distinct (got %v)", opts.Hierarchy)
			}
		}
		if opts.ReducedDims != 0 && opts.ReducedDims != sorted[0] {
			return nil, fmt.Errorf("emdsearch: ReducedDims %d conflicts with Hierarchy maximum %d", opts.ReducedDims, sorted[0])
		}
		opts.ReducedDims = sorted[0]
		opts.Hierarchy = sorted
	}
	if opts.AutoCascade {
		if opts.ReducedDims == 0 {
			return nil, fmt.Errorf("emdsearch: AutoCascade requires ReducedDims > 0")
		}
		if len(opts.Hierarchy) > 0 {
			return nil, fmt.Errorf("emdsearch: AutoCascade conflicts with a fixed Hierarchy")
		}
		if opts.AsymmetricQuery {
			return nil, fmt.Errorf("emdsearch: AutoCascade conflicts with AsymmetricQuery")
		}
	}
	store, err := db.New(rows)
	if err != nil {
		return nil, err
	}
	return &Engine{opts: opts, cost: cost, dist: dist, store: store}, nil
}

// Add validates and inserts a histogram with an optional label,
// returning its index. Adding invalidates the prepared query pipeline;
// it is rebuilt transparently on the next query (the reduction matrix
// itself is kept — re-run Build to re-derive it from the grown data).
// Queries already in flight keep answering over the snapshot they
// started with.
//
// With an open write-ahead log (OpenWAL), the mutation is validated
// first, then appended to the log and fsynced, and only then applied
// in memory: an Add that returns nil survives a crash, and an Add that
// fails left no trace in either place.
func (e *Engine) Add(label string, h Histogram) (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.wal != nil {
		if err := e.store.Check(h); err != nil {
			return 0, err
		}
		rec := persist.WALRecord{Op: persist.WALAdd, ID: e.store.Len(), Label: label, Vector: h}
		if err := e.wal.Append(rec); err != nil {
			return 0, fmt.Errorf("emdsearch: add: %w", err)
		}
		e.metrics.walAppended()
	}
	id, err := e.store.Add(label, h)
	if err != nil {
		return 0, err
	}
	e.snap = nil
	return id, nil
}

// Len returns the number of indexed histograms.
func (e *Engine) Len() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.store.Len()
}

// Dim returns the histogram dimensionality.
func (e *Engine) Dim() int { return e.store.Dim() }

// Cost returns a copy of the engine's ground-distance matrix. It is
// what LoadEngine and RecoverEngine need to be handed to reopen this
// engine's persisted state (snapshots carry only a fingerprint of the
// matrix, not the matrix itself).
func (e *Engine) Cost() CostMatrix {
	out := make(CostMatrix, len(e.cost))
	for i, row := range e.cost {
		out[i] = append([]float64(nil), row...)
	}
	return out
}

// Label returns the label of item i.
func (e *Engine) Label(i int) string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.store.Item(i).Label
}

// Vector returns the histogram of item i.
func (e *Engine) Vector(i int) Histogram {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.store.Vector(i)
}

// SetWorkers changes the refinement worker bound (see Options.Workers)
// at runtime. It invalidates the prepared pipeline; the next query
// rebuilds it with the new bound.
func (e *Engine) SetWorkers(workers int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.opts.Workers = workers
	e.snap = nil
}

// Build derives the reduction matrix from the indexed data according
// to the configured method. It must be called once after the initial
// bulk load (and may be called again later to re-derive the reduction
// from grown data). With ReducedDims == 0 it is a no-op. Build blocks
// new queries only while installing the result; queries in flight
// continue on the previous pipeline.
func (e *Engine) Build() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.opts.ReducedDims == 0 {
		e.red = nil
		e.cascade = nil
		e.plan = nil
		e.buildFlows = nil
		e.snap = nil
		return nil
	}
	if e.store.Len() == 0 {
		return fmt.Errorf("emdsearch: Build on empty engine")
	}
	rng := rand.New(rand.NewSource(e.opts.Seed))
	flows, err := e.collectFlows(e.store.Vectors(), rng)
	if err != nil {
		return err
	}
	red, err := e.deriveReduction(e.opts.ReducedDims, flows, rng)
	if err != nil {
		return err
	}
	e.red = red
	e.cascade = nil
	e.buildFlows = flows
	if len(e.opts.Hierarchy) > 1 {
		cascade, err := e.buildCascadeFrom(red, flows, e.opts.Hierarchy[1:], rng)
		if err != nil {
			return err
		}
		e.cascade = cascade
	}
	if e.opts.AutoCascade {
		// Re-plan from scratch: the freshly derived reduction is the
		// 1-level chain until observed counters argue otherwise.
		e.resetPlanLocked()
	}
	e.snap = nil
	return nil
}

// collectFlows gathers the database sample flows the flow-based
// reduction methods optimize against; nil (with no error) for the
// data-independent methods.
func (e *Engine) collectFlows(vectors []Histogram, rng *rand.Rand) ([][]float64, error) {
	if e.opts.Method != FBMod && e.opts.Method != FBAll {
		return nil, nil
	}
	sample := flowred.Sample(vectors, e.opts.SampleSize, rng)
	if len(sample) < 2 {
		return nil, fmt.Errorf("emdsearch: flow-based reduction needs at least 2 indexed histograms")
	}
	return flowred.AverageFlowsParallel(sample, e.dist, 0)
}

// deriveReduction derives a combining reduction to dims original →
// dims reduced dimensions with the configured method. flows is the
// full-dimensional sample flow matrix (used by the flow-based methods
// only; see collectFlows). It reads only immutable engine state, so
// the cascade planner may call it without holding e.mu.
func (e *Engine) deriveReduction(dims int, flows [][]float64, rng *rand.Rand) (*core.Reduction, error) {
	switch e.opts.Method {
	case Adjacent:
		return core.Adjacent(len(e.cost), dims)
	case KMedoids:
		res, err := cluster.BestOfRestarts(e.cost, dims, 3, rng)
		if err != nil {
			return nil, err
		}
		return res.Reduction, nil
	case FBMod, FBAll:
		res, err := cluster.BestOfRestarts(e.cost, dims, 3, rng)
		if err != nil {
			return nil, err
		}
		var red *core.Reduction
		if e.opts.Method == FBMod {
			red, _, err = flowred.OptimizeMod(res.Reduction.Assignment(), dims, flows, e.cost, flowred.Options{})
		} else {
			red, _, err = flowred.OptimizeAll(res.Reduction.Assignment(), dims, flows, e.cost, flowred.Options{})
		}
		if err != nil {
			return nil, err
		}
		return red, nil
	default:
		return nil, fmt.Errorf("emdsearch: unknown reduction method %q", e.opts.Method)
	}
}

// buildCascadeFrom derives the coarser nested levels of a cascade
// from the finest reduction: each level in coarser (reduced
// dimensionalities, descending) clusters (or locally searches) the
// previous level's *reduced* problem — reduced cost matrix and, for the
// flow-based methods, aggregated flows — and is composed with it, so
// every level's optimal reduced EMD lower-bounds the next finer one.
// flows is the full-dimensional sample flow matrix. Like
// deriveReduction it reads only immutable engine state.
func (e *Engine) buildCascadeFrom(finest *core.Reduction, flows [][]float64, coarser []int, rng *rand.Rand) ([]*core.Reduction, error) {
	cascade := []*core.Reduction{finest}
	prev := finest
	curCost, err := core.ReduceCost(e.cost, prev, prev)
	if err != nil {
		return nil, err
	}
	curFlows := flows
	if curFlows != nil {
		if curFlows, err = core.AggregateFlows(curFlows, prev); err != nil {
			return nil, err
		}
	}
	for _, dr := range coarser {
		var inner *core.Reduction
		switch e.opts.Method {
		case Adjacent:
			if inner, err = core.Adjacent(prev.ReducedDims(), dr); err != nil {
				return nil, err
			}
		case KMedoids:
			res, err := cluster.BestOfRestarts(curCost, dr, 3, rng)
			if err != nil {
				return nil, err
			}
			inner = res.Reduction
		case FBMod, FBAll:
			res, err := cluster.BestOfRestarts(curCost, dr, 3, rng)
			if err != nil {
				return nil, err
			}
			if e.opts.Method == FBMod {
				inner, _, err = flowred.OptimizeMod(res.Reduction.Assignment(), dr, curFlows, curCost, flowred.Options{})
			} else {
				inner, _, err = flowred.OptimizeAll(res.Reduction.Assignment(), dr, curFlows, curCost, flowred.Options{})
			}
			if err != nil {
				return nil, err
			}
		}
		composed, err := core.Compose(prev, inner)
		if err != nil {
			return nil, err
		}
		cascade = append(cascade, composed)
		if curCost, err = core.ReduceCost(curCost, inner, inner); err != nil {
			return nil, err
		}
		if curFlows != nil {
			if curFlows, err = core.AggregateFlows(curFlows, inner); err != nil {
				return nil, err
			}
		}
		prev = composed
	}
	return cascade, nil
}

// Reduction returns the current reduction's assignment of original to
// reduced dimensions, or nil when the engine runs unreduced.
func (e *Engine) Reduction() []int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.red == nil {
		return nil
	}
	return e.red.Assignment()
}

// snapshot returns the current immutable query pipeline, building and
// installing a fresh one if a mutation invalidated it. The fast path
// is a single RLock.
func (e *Engine) snapshot() (*snapshot, error) {
	e.mu.RLock()
	s := e.snap
	e.mu.RUnlock()
	if s != nil {
		return s, nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.snap == nil {
		s, err := e.buildSnapshotLocked()
		if err != nil {
			return nil, err
		}
		e.snap = s
		e.metrics.snapshotBuilt()
	}
	return e.snap, nil
}

// resolveWorkers maps Options.Workers to an effective worker count.
func resolveWorkers(w int) int {
	if w < 0 {
		return runtime.GOMAXPROCS(0)
	}
	if w == 0 {
		return 1
	}
	return w
}

// buildSnapshotLocked assembles the query pipeline for the current
// data. The caller must hold e.mu for writing.
func (e *Engine) buildSnapshotLocked() (*snapshot, error) {
	if e.store.Len() == 0 {
		return nil, fmt.Errorf("emdsearch: no indexed histograms")
	}
	vectors := e.store.Vectors()
	labels := make([]string, e.store.Len())
	for i := range labels {
		labels[i] = e.store.Item(i).Label
	}
	deleted := make(map[int]bool, len(e.deleted))
	for i := range e.deleted {
		deleted[i] = true
	}
	snap := &snapshot{
		vectors: vectors,
		labels:  labels,
		deleted: deleted,
		dist:    e.dist,
		dim:     e.store.Dim(),
		red:     e.red,
		hook:    e.opts.RefineHook,
	}
	greedyBase, err := lb.NewGreedyUpper(e.cost)
	if err != nil {
		return nil, err
	}
	snap.greedy.New = func() interface{} { return greedyBase.Clone() }
	s := &search.Searcher{
		N:       len(vectors),
		Workers: resolveWorkers(e.opts.Workers),
		Refine:  snap.refine,
	}
	if e.opts.UnboundedRefine {
		s.Refine = snap.refineUnbounded
	} else {
		s.RefineBounded = snap.refineBounded
		s.RefineBoundedIntr = snap.refineBoundedIntr
	}
	if e.opts.Positions != nil {
		cb, err := lb.NewCentroid(e.opts.Positions, e.opts.Positions, e.opts.PositionNorm)
		if err != nil {
			return nil, err
		}
		if err := cb.CheckAgainst(e.cost, 1e-6); err != nil {
			return nil, fmt.Errorf("emdsearch: Positions do not match the cost matrix: %w", err)
		}
		// Precompute database centroids and index them in a k-d tree:
		// the centroid distance lower-bounds the EMD, so an incremental
		// nearest-centroid stream is a valid base ranking — no filter
		// stage ever scans all n items.
		centroids := make([][]float64, len(vectors))
		for i, v := range vectors {
			centroids[i] = vecmath.Centroid(v, e.opts.Positions)
		}
		tree, err := kdtree.Build(centroids, e.opts.PositionNorm)
		if err != nil {
			return nil, err
		}
		positions := e.opts.Positions
		s.BaseRanking = func(q Histogram) (search.Ranking, error) {
			stream, err := tree.Query(vecmath.Centroid(q, positions))
			if err != nil {
				return nil, err
			}
			return &centroidRanking{stream: stream}, nil
		}
	}
	if e.red != nil {
		// Levels to filter with, coarsest first: the hierarchy cascade
		// when configured, otherwise just the single reduction.
		levels := []*core.Reduction{e.red}
		if len(e.cascade) > 1 {
			levels = make([]*core.Reduction, 0, len(e.cascade))
			for i := len(e.cascade) - 1; i >= 0; i-- {
				levels = append(levels, e.cascade[i])
			}
		}
		snap.cascade = levels

		type levelState struct {
			red     *core.Reduction
			reduced *core.ReducedEMD
			vecs    []Histogram      // Options.ReferenceScan only
			cols    *colscan.Columns // default columnar layout
		}
		states := make([]levelState, len(levels))
		for li, lr := range levels {
			lred, err := core.NewReducedEMD(e.cost, lr, lr)
			if err != nil {
				return nil, err
			}
			st := levelState{red: lr, reduced: lred}
			if e.opts.ReferenceScan {
				st.vecs = make([]Histogram, len(vectors))
				for i, v := range vectors {
					st.vecs[i] = lr.Apply(v)
				}
			} else {
				st.cols, err = colscan.Build(len(vectors), lr.ReducedDims(), e.opts.FilterBlockSize,
					func(i int, dst []float64) { copy(dst, lr.Apply(vectors[i])) })
				if err != nil {
					return nil, err
				}
				e.metrics.columnsBuilt()
			}
			states[li] = st
		}
		// The finest level's reduced data also serves the certified
		// approximate and membership query paths (ApproxKNN, RangeIDs,
		// EpsilonForCount), which previously re-derived it per query.
		finest := states[len(states)-1]
		snap.reduced = finest.reduced
		snap.reducedVecs = finest.vecs
		snap.reducedCols = finest.cols
		if snap.redUpper, err = core.NewReducedEMDUpper(e.cost, finest.red, finest.red); err != nil {
			return nil, err
		}

		if !e.opts.DisableIMFilter {
			coarsest := states[0]
			im, err := lb.NewIM(coarsest.reduced.Cost())
			if err != nil {
				return nil, err
			}
			if e.opts.ReferenceScan {
				s.Stages = append(s.Stages, search.FilterStage{
					Name:         "Red-IM",
					PrepareQuery: coarsest.red.Apply,
					Distance: func(qr Histogram, i int) float64 {
						return im.Distance(qr, coarsest.vecs[i])
					},
				})
			} else {
				// The quantized pre-filter leads the chain unless
				// disabled or displaced by a BaseRanking (with a lazy
				// ranking at the bottom there is no eager first scan for
				// the batched kernel to accelerate, and its per-item
				// tangent recompilation would cost more than it prunes).
				if !e.opts.DisableQuantizedFilter && s.BaseRanking == nil {
					hash := persist.ReductionHash(coarsest.red.Assignment(), coarsest.red.ReducedDims())
					qz := e.reusableQuant(coarsest.cols, hash)
					if qz == nil {
						if qz, err = colscan.Quantize(coarsest.cols, maxCost(im.Cost())); err != nil {
							return nil, err
						}
					}
					// Stash for Save and for the next rebuild (hash and
					// geometry guard staleness; see reusableQuant).
					e.savedQuant, e.savedQuantHash = qz, hash
					qsc, err := colscan.NewQuantScanner(im, qz)
					if err != nil {
						return nil, err
					}
					s.Stages = append(s.Stages, search.FilterStage{
						Name:         "Q-Red-IM",
						PrepareQuery: coarsest.red.Apply,
						Distance:     qsc.DistanceAt,
						ScanAll:      qsc.ScanAll,
					})
					snap.quant = qz
				}
				sc, err := colscan.NewIMScanner(im, coarsest.cols)
				if err != nil {
					return nil, err
				}
				s.Stages = append(s.Stages, search.FilterStage{
					Name:         "Red-IM",
					PrepareQuery: coarsest.red.Apply,
					Distance:     sc.DistanceAt,
					ScanAll:      sc.ScanAll,
				})
			}
		}
		// Hierarchical mode: one Red-EMD stage per level, coarsest
		// (cheapest) first; each lower-bounds the next by nesting.
		if len(states) > 1 {
			for li := range states {
				st := states[li]
				stage := search.FilterStage{
					Name:         fmt.Sprintf("Red-EMD-%d", st.red.ReducedDims()),
					PrepareQuery: st.red.Apply,
				}
				if e.opts.ReferenceScan {
					stage.Distance = func(qr Histogram, i int) float64 {
						return st.reduced.DistanceReduced(qr, st.vecs[i])
					}
				} else {
					stage.Distance = gatherDistance(st.cols, st.reduced.DistanceReduced)
					stage.ScanAll = scanGatherAll(st.cols, st.reduced.DistanceReduced)
				}
				s.Stages = append(s.Stages, stage)
			}
			snap.searcher = s
			return snap, nil
		}
		st := states[0]
		if e.opts.AsymmetricQuery {
			// Rectangular filter EMD: unreduced query against reduced
			// database vectors. It dominates the symmetric reduced EMD
			// item-wise, so chaining after Red-IM stays valid.
			asym, err := core.NewReducedEMD(e.cost, core.Identity(e.store.Dim()), e.red)
			if err != nil {
				return nil, err
			}
			stage := search.FilterStage{
				Name:         "Asym-Red-EMD",
				PrepareQuery: func(q Histogram) Histogram { return q },
			}
			if e.opts.ReferenceScan {
				stage.Distance = func(q Histogram, i int) float64 {
					return asym.DistanceReduced(q, st.vecs[i])
				}
			} else {
				stage.Distance = gatherDistance(st.cols, asym.DistanceReduced)
				stage.ScanAll = scanGatherAll(st.cols, asym.DistanceReduced)
			}
			s.Stages = append(s.Stages, stage)
		} else {
			stage := search.FilterStage{
				Name:         "Red-EMD",
				PrepareQuery: e.red.Apply,
			}
			if e.opts.ReferenceScan {
				stage.Distance = func(qr Histogram, i int) float64 {
					return st.reduced.DistanceReduced(qr, st.vecs[i])
				}
			} else {
				stage.Distance = gatherDistance(st.cols, st.reduced.DistanceReduced)
				stage.ScanAll = scanGatherAll(st.cols, st.reduced.DistanceReduced)
			}
			s.Stages = append(s.Stages, stage)
		}
	}
	if err := e.attachIndexLocked(snap, s); err != nil {
		return nil, err
	}
	snap.searcher = s
	return snap, nil
}

// maxCost returns the largest entry of a cost matrix — the Cmax the
// quantized filter's error margins are calibrated against.
func maxCost(c emd.CostMatrix) float64 {
	var m float64
	for _, row := range c {
		for _, v := range row {
			if v > m {
				m = v
			}
		}
	}
	return m
}

// reusableQuant returns the stashed quantized filter (restored from a
// persisted snapshot, or built by a previous pipeline assembly) if it
// provably matches what Quantize would produce for the current
// columns: same item count and geometry, and the same reduction
// fingerprint. The store is append-only and deletes are soft, so
// (item count, reduction) pins the reduced content exactly; the cost
// maximum is a function of the reduction, covered by the fingerprint.
// Otherwise nil, and the caller requantizes. Caller holds e.mu.
func (e *Engine) reusableQuant(cols *colscan.Columns, hash uint64) *colscan.Quantized {
	qz := e.savedQuant
	if qz == nil || e.savedQuantHash != hash {
		return nil
	}
	if qz.Len() != cols.Len() || qz.Dims() != cols.Dims() || qz.BlockSize() != cols.BlockSize() {
		return nil
	}
	e.metrics.quantizedReused()
	return qz
}

// gatherDistance adapts a distance over per-item reduced vectors to
// the columnar layout: gather into pooled scratch, evaluate. The
// returned closure is shared by all queries of a snapshot, hence the
// pool (stage Distance functions must be concurrency-safe).
func gatherDistance(cols *colscan.Columns, dist func(qr, v Histogram) float64) func(Histogram, int) float64 {
	pool := &sync.Pool{New: func() interface{} {
		b := make([]float64, cols.Dims())
		return &b
	}}
	return func(qr Histogram, i int) float64 {
		bp := pool.Get().(*[]float64)
		d := dist(qr, cols.Gather(i, *bp))
		pool.Put(bp)
		return d
	}
}

// scanGatherAll adapts the same distance to the eager batched form
// used when the stage sits at the bottom of the chain: one block
// transpose per block instead of n pooled gathers.
func scanGatherAll(cols *colscan.Columns, dist func(qr, v Histogram) float64) func(Histogram, []float64) int {
	return func(qr Histogram, out []float64) int {
		return cols.ScanGather(out, func(i int, row []float64) float64 {
			return dist(qr, row)
		})
	}
}

// validateQuery checks a query histogram against the engine's
// dimensionality. Failures wrap ErrBadQuery.
func (e *Engine) validateQuery(q Histogram) error {
	if err := emd.Validate(q); err != nil {
		return fmt.Errorf("%w: %w", ErrBadQuery, err)
	}
	if len(q) != e.Dim() {
		return badQueryf("query has %d dimensions, index stores %d", len(q), e.Dim())
	}
	return nil
}

// validateKNN validates a k-NN query's inputs; failures wrap
// ErrBadQuery. Every public k-NN entry point goes through it.
func (e *Engine) validateKNN(q Histogram, k int) error {
	if k < 1 {
		return badQueryf("k = %d, want >= 1", k)
	}
	return e.validateQuery(q)
}

// validateRange validates a range query's inputs; failures wrap
// ErrBadQuery. Every public range entry point goes through it.
func (e *Engine) validateRange(q Histogram, eps float64) error {
	if eps < 0 || math.IsNaN(eps) {
		return badQueryf("eps = %g, want >= 0", eps)
	}
	return e.validateQuery(q)
}

// KNN returns the k nearest neighbors of q under the exact EMD,
// computed losslessly through the filter chain. Safe for concurrent
// use. It is a thin wrapper over KNNCtx with context.Background():
// results are byte-identical, and no cancellation machinery is
// engaged for a context that can never be cancelled.
func (e *Engine) KNN(q Histogram, k int) ([]Result, *QueryStats, error) {
	ans, err := e.KNNCtx(context.Background(), q, k)
	if err != nil {
		return nil, nil, err
	}
	return ans.Results, ans.Stats, nil
}

// Range returns all items within exact EMD eps of q. Safe for
// concurrent use. It is a thin wrapper over RangeCtx with
// context.Background(); results are byte-identical.
func (e *Engine) Range(q Histogram, eps float64) ([]Result, *QueryStats, error) {
	return e.RangeCtx(context.Background(), q, eps)
}

// Distance computes the exact EMD between q and indexed item i. It
// returns an error — rather than panicking — on an invalid query or
// out-of-range index (both wrapping ErrBadQuery), matching the rest of
// the query API; a solver invariant failure surfaces as ErrInternal
// instead of unwinding into the caller.
func (e *Engine) Distance(q Histogram, i int) (d float64, err error) {
	if verr := e.validateQuery(q); verr != nil {
		return 0, verr
	}
	e.mu.RLock()
	if i < 0 || i >= e.store.Len() {
		n := e.store.Len()
		e.mu.RUnlock()
		return 0, badQueryf("Distance(%d): index out of range [0, %d)", i, n)
	}
	v := e.store.Vector(i)
	e.mu.RUnlock()
	defer func() {
		if r := recover(); r != nil {
			e.metrics.queryPanicked()
			err = &InternalError{Op: "distance", Index: i, Value: r}
		}
	}()
	return e.dist.Distance(q, v), nil
}

// centroidRanking adapts an incremental k-d tree stream over database
// centroids to the search.Ranking interface.
type centroidRanking struct {
	stream *kdtree.Stream
}

// Next yields the next-nearest centroid's item.
func (r *centroidRanking) Next() (search.Candidate, bool) {
	id, dist, ok := r.stream.Next()
	if !ok {
		return search.Candidate{}, false
	}
	return search.Candidate{Index: id, Dist: dist}, true
}
