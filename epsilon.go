package emdsearch

import (
	"fmt"
	"math"

	"emdsearch/internal/core"
	"emdsearch/internal/emd"
	"emdsearch/internal/lb"
	"emdsearch/internal/search"
	"emdsearch/internal/stats"
)

// EpsilonForCount returns a range radius guaranteed to make
// Range(q, eps) return at least `count` results, computed from reduced
// representations only: it is the count-th smallest *upper-bound*
// distance (max-cost reduced EMD) from q to the database. Because the
// upper bound dominates the exact EMD, at least `count` objects lie
// within the returned radius. Typical use is result-size-targeted
// range search ("give me roughly fifty matches") without guessing in
// distance units. Requires a built reduction.
func (e *Engine) EpsilonForCount(q Histogram, count int) (float64, error) {
	if err := emd.Validate(q); err != nil {
		return 0, fmt.Errorf("emdsearch: query: %w", err)
	}
	if len(q) != e.Dim() {
		return 0, fmt.Errorf("emdsearch: query has %d dimensions, index stores %d", len(q), e.Dim())
	}
	if count < 1 || count > e.Len() {
		return 0, fmt.Errorf("emdsearch: count %d out of range [1, %d]", count, e.Len())
	}
	if e.red == nil {
		return 0, fmt.Errorf("emdsearch: EpsilonForCount needs a built reduction (set ReducedDims and call Build)")
	}
	upper, err := core.NewReducedEMDUpper(e.cost, e.red, e.red)
	if err != nil {
		return 0, err
	}
	qr := e.red.Apply(q)
	uppers := make([]float64, e.Len())
	for i := 0; i < e.Len(); i++ {
		uppers[i] = upper.DistanceReduced(qr, e.red.Apply(e.store.Vector(i)))
	}
	d, err := stats.NewDistribution(uppers)
	if err != nil {
		return 0, err
	}
	return d.KthSmallest(count), nil
}

// DistanceDistribution summarizes the exact EMDs from q to a sample of
// up to sampleSize database objects (deterministic stride sampling).
// Useful for choosing range radii and judging workload difficulty; for
// guaranteed result counts prefer EpsilonForCount, which needs no
// exact EMDs at all.
func (e *Engine) DistanceDistribution(q Histogram, sampleSize int) (*stats.Distribution, error) {
	if err := emd.Validate(q); err != nil {
		return nil, fmt.Errorf("emdsearch: query: %w", err)
	}
	if len(q) != e.Dim() {
		return nil, fmt.Errorf("emdsearch: query has %d dimensions, index stores %d", len(q), e.Dim())
	}
	if sampleSize < 1 {
		return nil, fmt.Errorf("emdsearch: sample size %d, want >= 1", sampleSize)
	}
	n := e.Len()
	if n == 0 {
		return nil, fmt.Errorf("emdsearch: empty engine")
	}
	if sampleSize > n {
		sampleSize = n
	}
	stride := n / sampleSize
	if stride < 1 {
		stride = 1
	}
	var dists []float64
	for i := 0; i < n && len(dists) < sampleSize; i += stride {
		dists = append(dists, e.Distance(q, i))
	}
	return stats.NewDistribution(dists)
}

// RangeIDs answers a membership range query — which items lie within
// eps — exactly, but cheaper than Range when distances are not
// needed: items whose greedy-flow upper bound is already within eps
// are accepted without an exact EMD computation; only items whose
// [reduced-EMD lower bound, greedy upper bound] interval straddles eps
// are refined. Returns ascending item ids.
func (e *Engine) RangeIDs(q Histogram, eps float64) ([]int, error) {
	if err := emd.Validate(q); err != nil {
		return nil, fmt.Errorf("emdsearch: query: %w", err)
	}
	if len(q) != e.Dim() {
		return nil, fmt.Errorf("emdsearch: query has %d dimensions, index stores %d", len(q), e.Dim())
	}
	if err := e.ensureSearcher(); err != nil {
		return nil, err
	}
	upper, err := lb.NewGreedyUpper(e.cost)
	if err != nil {
		return nil, err
	}
	vectors := e.store.Vectors()
	var lowers []float64
	if e.red != nil {
		lower, err := core.NewReducedEMD(e.cost, e.red, e.red)
		if err != nil {
			return nil, err
		}
		qr := e.red.Apply(q)
		lowers = make([]float64, len(vectors))
		for i, v := range vectors {
			lowers[i] = lower.DistanceReduced(qr, e.red.Apply(v))
		}
	} else {
		lowers = make([]float64, len(vectors))
	}
	ids, _, err := search.RangeIDs(search.NewScanRanking(lowers),
		func(i int) float64 {
			if e.deleted[i] {
				return math.Inf(1)
			}
			return e.dist.Distance(q, vectors[i])
		},
		func(i int) float64 {
			if e.deleted[i] {
				return math.Inf(1)
			}
			return upper.Distance(q, vectors[i])
		},
		eps)
	return ids, err
}
