package emdsearch

import (
	"context"
	"fmt"
	"math"

	"emdsearch/internal/search"
	"emdsearch/internal/stats"
)

// EpsilonForCount returns a range radius guaranteed to make
// Range(q, eps) return at least `count` live results, computed from
// reduced representations only: it is the count-th smallest
// *upper-bound* distance (max-cost reduced EMD) from q to the live
// database. Because the upper bound dominates the exact EMD, at least
// `count` live objects lie within the returned radius; soft-deleted
// items are excluded from the distribution, so deletions can never
// make the radius under-deliver. Typical use is result-size-targeted
// range search ("give me roughly fifty matches") without guessing in
// distance units. Requires a built reduction. Safe for concurrent use;
// the reduced database vectors and the upper-bound cost matrix come
// precomputed from the engine snapshot.
func (e *Engine) EpsilonForCount(q Histogram, count int) (float64, error) {
	return e.epsilonForCount(context.Background(), q, count)
}

func (e *Engine) epsilonForCount(ctx context.Context, q Histogram, count int) (float64, error) {
	if err := e.validateQuery(q); err != nil {
		return 0, err
	}
	s, err := e.snapshot()
	if err != nil {
		return 0, err
	}
	live := len(s.vectors) - len(s.deleted)
	if count < 1 || count > live {
		return 0, badQueryf("count %d out of range [1, %d]", count, live)
	}
	if s.red == nil {
		return 0, fmt.Errorf("emdsearch: EpsilonForCount needs a built reduction (set ReducedDims and call Build)")
	}
	qr := s.red.Apply(q)
	uppers := make([]float64, 0, live)
	buf := s.reducedScratch()
	for i := range s.vectors {
		if s.deleted[i] {
			continue
		}
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		uppers = append(uppers, s.redUpper.DistanceReduced(qr, s.finestReduced(i, buf)))
	}
	d, err := stats.NewDistribution(uppers)
	if err != nil {
		return 0, err
	}
	return d.KthSmallest(count), nil
}

// DistanceDistribution summarizes the exact EMDs from q to a sample of
// up to sampleSize live database objects (deterministic stride
// sampling over the live set; soft-deleted items are never sampled,
// and the stride adapts so deletions do not shrink the sample below
// min(sampleSize, live)). Useful for choosing range radii and judging
// workload difficulty; for guaranteed result counts prefer
// EpsilonForCount, which needs no exact EMDs at all.
func (e *Engine) DistanceDistribution(q Histogram, sampleSize int) (*stats.Distribution, error) {
	return e.distanceDistribution(context.Background(), q, sampleSize)
}

func (e *Engine) distanceDistribution(ctx context.Context, q Histogram, sampleSize int) (*stats.Distribution, error) {
	if err := e.validateQuery(q); err != nil {
		return nil, err
	}
	if sampleSize < 1 {
		return nil, badQueryf("sample size %d, want >= 1", sampleSize)
	}
	s, err := e.snapshot()
	if err != nil {
		return nil, err
	}
	liveIdx := make([]int, 0, len(s.vectors))
	for i := range s.vectors {
		if !s.deleted[i] {
			liveIdx = append(liveIdx, i)
		}
	}
	if len(liveIdx) == 0 {
		return nil, fmt.Errorf("emdsearch: no live items to sample")
	}
	stride := len(liveIdx) / sampleSize
	if stride < 1 {
		stride = 1
	}
	var dists []float64
	for j := 0; j < len(liveIdx) && len(dists) < sampleSize; j += stride {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		dists = append(dists, s.dist.Distance(q, s.vectors[liveIdx[j]]))
	}
	return stats.NewDistribution(dists)
}

// RangeIDs answers a membership range query — which items lie within
// eps — exactly, but cheaper than Range when distances are not
// needed: items whose greedy-flow upper bound is already within eps
// are accepted without an exact EMD computation; only items whose
// [reduced-EMD lower bound, greedy upper bound] interval straddles eps
// are refined. Refinements go through the same threshold-aware bounded
// kernel as KNN/Range (eps as the abort bound, warm starts, sparsity
// reduction) and fan out over Options.Workers goroutines, so the
// engine's RefinesAborted/WarmStartHits metrics cover this path too.
// Returns ascending item ids. Safe for concurrent use.
func (e *Engine) RangeIDs(q Histogram, eps float64) ([]int, error) {
	return e.rangeIDs(context.Background(), q, eps)
}

func (e *Engine) rangeIDs(ctx context.Context, q Histogram, eps float64) ([]int, error) {
	if err := e.validateRange(q, eps); err != nil {
		e.metrics.queryError()
		return nil, err
	}
	s, err := e.snapshot()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	upper := s.greedyUpper()
	defer s.putGreedy(upper)
	lowers := make([]float64, len(s.vectors))
	if s.red != nil {
		qr := s.red.Apply(q)
		buf := s.reducedScratch()
		for i := range s.vectors {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			lowers[i] = s.reduced.DistanceReduced(qr, s.finestReduced(i, buf))
		}
	}
	cancel, stopWatch := search.WatchContext(ctx)
	defer stopWatch()
	var refine search.BoundedRefine
	switch {
	case e.opts.UnboundedRefine:
		refine = func(i int, _ float64) search.Refinement {
			return search.Refinement{Dist: s.refineUnbounded(q, i)}
		}
	case cancel != nil:
		refine = func(i int, abortAbove float64) search.Refinement {
			return s.refineBoundedIntr(q, i, abortAbove, cancel)
		}
	default:
		refine = func(i int, abortAbove float64) search.Refinement {
			return s.refineBounded(q, i, abortAbove)
		}
	}
	ids, st, err := search.RangeIDsBounded(search.NewScanRanking(lowers),
		refine,
		func(i int) float64 {
			if s.deleted[i] {
				return math.Inf(1)
			}
			return upper.Distance(q, s.vectors[i])
		},
		eps, s.searcher.Workers, cancel)
	if err != nil {
		e.metrics.queryError()
		return nil, e.internalErr("rangeids", err)
	}
	e.metrics.observeRangeIDs(st)
	if st.Cancelled {
		return ids, ctx.Err()
	}
	return ids, nil
}
