package emdsearch

import (
	"fmt"
	"math"

	"emdsearch/internal/search"
	"emdsearch/internal/stats"
)

// EpsilonForCount returns a range radius guaranteed to make
// Range(q, eps) return at least `count` results, computed from reduced
// representations only: it is the count-th smallest *upper-bound*
// distance (max-cost reduced EMD) from q to the database. Because the
// upper bound dominates the exact EMD, at least `count` objects lie
// within the returned radius. Typical use is result-size-targeted
// range search ("give me roughly fifty matches") without guessing in
// distance units. Requires a built reduction. Safe for concurrent use;
// the reduced database vectors and the upper-bound cost matrix come
// precomputed from the engine snapshot.
func (e *Engine) EpsilonForCount(q Histogram, count int) (float64, error) {
	if err := e.validateQuery(q); err != nil {
		return 0, err
	}
	s, err := e.snapshot()
	if err != nil {
		return 0, err
	}
	if count < 1 || count > len(s.vectors) {
		return 0, fmt.Errorf("emdsearch: count %d out of range [1, %d]", count, len(s.vectors))
	}
	if s.red == nil {
		return 0, fmt.Errorf("emdsearch: EpsilonForCount needs a built reduction (set ReducedDims and call Build)")
	}
	qr := s.red.Apply(q)
	uppers := make([]float64, len(s.vectors))
	for i := range s.vectors {
		uppers[i] = s.redUpper.DistanceReduced(qr, s.reducedVecs[i])
	}
	d, err := stats.NewDistribution(uppers)
	if err != nil {
		return 0, err
	}
	return d.KthSmallest(count), nil
}

// DistanceDistribution summarizes the exact EMDs from q to a sample of
// up to sampleSize database objects (deterministic stride sampling).
// Useful for choosing range radii and judging workload difficulty; for
// guaranteed result counts prefer EpsilonForCount, which needs no
// exact EMDs at all.
func (e *Engine) DistanceDistribution(q Histogram, sampleSize int) (*stats.Distribution, error) {
	if err := e.validateQuery(q); err != nil {
		return nil, err
	}
	if sampleSize < 1 {
		return nil, fmt.Errorf("emdsearch: sample size %d, want >= 1", sampleSize)
	}
	s, err := e.snapshot()
	if err != nil {
		return nil, err
	}
	n := len(s.vectors)
	stride := n / sampleSize
	if stride < 1 {
		stride = 1
	}
	var dists []float64
	for i := 0; i < n && len(dists) < sampleSize; i += stride {
		dists = append(dists, s.dist.Distance(q, s.vectors[i]))
	}
	return stats.NewDistribution(dists)
}

// RangeIDs answers a membership range query — which items lie within
// eps — exactly, but cheaper than Range when distances are not
// needed: items whose greedy-flow upper bound is already within eps
// are accepted without an exact EMD computation; only items whose
// [reduced-EMD lower bound, greedy upper bound] interval straddles eps
// are refined. Returns ascending item ids. Safe for concurrent use.
func (e *Engine) RangeIDs(q Histogram, eps float64) ([]int, error) {
	if err := e.validateQuery(q); err != nil {
		return nil, err
	}
	s, err := e.snapshot()
	if err != nil {
		return nil, err
	}
	upper := s.greedyUpper()
	defer s.putGreedy(upper)
	lowers := make([]float64, len(s.vectors))
	if s.red != nil {
		qr := s.red.Apply(q)
		for i := range s.vectors {
			lowers[i] = s.reduced.DistanceReduced(qr, s.reducedVecs[i])
		}
	}
	ids, _, err := search.RangeIDs(search.NewScanRanking(lowers),
		func(i int) float64 {
			return s.refine(q, i)
		},
		func(i int) float64 {
			if s.deleted[i] {
				return math.Inf(1)
			}
			return upper.Distance(q, s.vectors[i])
		},
		eps)
	return ids, err
}
