package emdsearch

import (
	"fmt"

	"emdsearch/internal/persist"
)

// Delete removes item i from query results. The deletion is "soft":
// the item keeps its index (ids of other items are stable) and its
// filter representations remain in place, but its refinement distance
// is treated as infinite, so it can never appear in KNN, Range,
// RangeIDs, Rank or ApproxKNN results. Space is reclaimed only by
// rebuilding the engine from the surviving items. Safe for concurrent
// use; queries already in flight keep answering over the snapshot
// they started with and may still return the item.
//
// With an open write-ahead log (OpenWAL), the deletion is appended to
// the log and fsynced before the in-memory state changes, so an
// acknowledged Delete survives a crash. Deletions are also persisted
// by Save/SaveFile/Checkpoint, so they never resurrect across a
// save/load round-trip.
func (e *Engine) Delete(i int) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if i < 0 || i >= e.store.Len() {
		return fmt.Errorf("emdsearch: Delete(%d): index out of range [0, %d)", i, e.store.Len())
	}
	if e.deleted == nil {
		e.deleted = make(map[int]bool)
	}
	if e.deleted[i] {
		return fmt.Errorf("emdsearch: item %d already deleted", i)
	}
	if e.wal != nil {
		if err := e.wal.Append(persist.WALRecord{Op: persist.WALDelete, ID: i}); err != nil {
			return fmt.Errorf("emdsearch: delete: %w", err)
		}
		e.metrics.walAppended()
	}
	e.deleted[i] = true
	e.snap = nil
	return nil
}

// Deleted reports whether item i has been soft-deleted.
func (e *Engine) Deleted(i int) bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.deleted[i]
}

// Alive returns the number of non-deleted items.
func (e *Engine) Alive() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.store.Len() - len(e.deleted)
}
