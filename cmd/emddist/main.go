// Command emddist computes Earth Mover's Distances between histograms
// read from files. Each input file holds one histogram per line as
// whitespace-separated numbers; all histograms must share one
// dimensionality. The ground distance is chosen with -cost, or read
// from a file of bin positions (-positions, one position per line)
// with the -p norm.
//
// Examples:
//
//	emddist -cost linear a.txt b.txt            # all pairs between files
//	emddist -cost modulo -normalize a.txt       # all pairs within one file
//	emddist -positions bins.txt -p 2 a.txt b.txt
//	emddist -cost linear -partial a.txt b.txt   # unequal-mass partial EMD
package main

import (
	"flag"
	"fmt"
	"os"

	"emdsearch/internal/data"
	"emdsearch/internal/emd"
)

func main() {
	var (
		costKind  = flag.String("cost", "linear", "ground distance: linear, modulo, or use -positions")
		positions = flag.String("positions", "", "file of bin positions (one per line) for a positional ground distance")
		p         = flag.Float64("p", 2, "Minkowski order for -positions")
		normalize = flag.Bool("normalize", false, "normalize histograms to total mass 1 before computing")
		partial   = flag.Bool("partial", false, "compute the unequal-mass partial EMD (implies no normalization check)")
		penalty   = flag.Float64("penalty", 0, "with -partial: per-unit penalty for surplus mass (EMD-hat)")
		withFlow  = flag.Bool("flow", false, "print the optimal flow matrix for each pair")
	)
	flag.Parse()
	files := flag.Args()
	if len(files) < 1 || len(files) > 2 {
		fmt.Fprintln(os.Stderr, "emddist: need one or two histogram files")
		os.Exit(2)
	}

	left, err := readHistograms(files[0])
	if err != nil {
		fail(err)
	}
	right := left
	within := true
	if len(files) == 2 {
		right, err = readHistograms(files[1])
		if err != nil {
			fail(err)
		}
		within = false
	}
	if len(left) == 0 || len(right) == 0 {
		fail(fmt.Errorf("no histograms found"))
	}
	d := len(left[0])
	for _, hs := range [][]emd.Histogram{left, right} {
		for i, h := range hs {
			if len(h) != d {
				fail(fmt.Errorf("histogram %d has %d bins, want %d", i, len(h), d))
			}
		}
	}
	if *normalize {
		for _, hs := range [][]emd.Histogram{left, right} {
			for i := range hs {
				hs[i] = emd.Normalize(hs[i])
			}
		}
	}

	cost, err := buildCost(*costKind, *positions, *p, d)
	if err != nil {
		fail(err)
	}

	for i, x := range left {
		for j, y := range right {
			if within && j <= i {
				continue
			}
			var dist float64
			var err error
			switch {
			case *partial && *penalty > 0:
				dist, err = emd.PenalizedDistance(x, y, cost, *penalty)
			case *partial:
				dist, err = emd.PartialDistance(x, y, cost)
			default:
				dist, err = emd.Distance(x, y, cost)
			}
			if err != nil {
				fail(fmt.Errorf("pair (%d, %d): %w", i, j, err))
			}
			fmt.Printf("%d\t%d\t%.9g\n", i, j, dist)
			if *withFlow && !*partial {
				_, flow, err := emd.DistanceWithFlow(x, y, cost)
				if err != nil {
					fail(err)
				}
				for fi, row := range flow {
					for fj, f := range row {
						if f > 1e-12 {
							fmt.Printf("  flow %d -> %d: %.9g\n", fi, fj, f)
						}
					}
				}
			}
		}
	}
}

func buildCost(kind, positionsFile string, p float64, d int) (emd.CostMatrix, error) {
	if positionsFile != "" {
		pos, err := readHistograms(positionsFile)
		if err != nil {
			return nil, err
		}
		if len(pos) != d {
			return nil, fmt.Errorf("%d positions for %d bins", len(pos), d)
		}
		coords := make([][]float64, len(pos))
		for i := range pos {
			coords[i] = pos[i]
		}
		return emd.PositionCost(coords, coords, p)
	}
	switch kind {
	case "linear":
		return emd.LinearCost(d), nil
	case "modulo":
		return emd.ModuloCost(d), nil
	}
	return nil, fmt.Errorf("unknown cost %q (want linear, modulo, or -positions)", kind)
}

func readHistograms(path string) ([]emd.Histogram, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	vectors, _, err := data.ReadVectors(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make([]emd.Histogram, len(vectors))
	for i, v := range vectors {
		out[i] = v
	}
	return out, nil
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "emddist: %v\n", err)
	os.Exit(1)
}
