// Command emdquery opens a corpus written by emdgen, builds a
// filter-and-refine search engine over it and answers k-NN queries,
// printing the neighbors (with class labels) and the multistep filter
// statistics.
//
// The ground-distance matrix is not serialized with the data; it is
// reconstructed from the corpus type exactly as emdgen built it, so
// -dataset (and -dim/-seed for the music/words corpora) must match the
// generation parameters.
//
// Usage:
//
//	emdgen  -dataset color -n 2000 -out color.db
//	emdquery -db color.db -dataset color -dprime 8 -k 10 -query 17
package main

import (
	"flag"
	"fmt"
	"os"

	"emdsearch/internal/data"
	"emdsearch/internal/db"
	"emdsearch/internal/emd"

	emdsearch "emdsearch"
)

func costFor(dataset string, dim int, seed int64) (emd.CostMatrix, error) {
	switch dataset {
	case "retina":
		pos := emd.GridPositions(data.RetinaTileRows, data.RetinaTileCols)
		return emd.PositionCost(pos, pos, 2)
	case "irma":
		return emd.ScaleCost(emd.LinearCost(data.IRMADim), 1.0/float64(data.IRMADim-1))
	case "color":
		ds, err := data.ColorImages(1, seed)
		if err != nil {
			return nil, err
		}
		return ds.Cost, nil
	case "music":
		return emd.ScaleCost(emd.LinearCost(dim), 1.0/float64(dim-1))
	case "words":
		ds, err := data.Words(1, dim, seed)
		if err != nil {
			return nil, err
		}
		return ds.Cost, nil
	case "gaussian":
		return emd.ScaleCost(emd.LinearCost(dim), 1.0/float64(dim-1))
	}
	return nil, fmt.Errorf("unknown dataset %q", dataset)
}

func main() {
	var (
		dbPath  = flag.String("db", "", "database file written by emdgen (required)")
		dataset = flag.String("dataset", "retina", "corpus type used at generation time")
		dim     = flag.Int("dim", 48, "dimensionality used at generation time (music/words)")
		seed    = flag.Int64("seed", 1, "seed used at generation time (color/words cost reconstruction)")
		dprime  = flag.Int("dprime", 8, "reduced filter dimensionality (0 = exact scan)")
		k       = flag.Int("k", 10, "number of neighbors")
		queryI  = flag.Int("query", 0, "database index used as the query object")
		method  = flag.String("method", "fb-all", "reduction method: fb-all, fb-mod, kmedoids, adjacent")
	)
	flag.Parse()
	if *dbPath == "" {
		fmt.Fprintln(os.Stderr, "emdquery: -db is required")
		os.Exit(2)
	}

	f, err := os.Open(*dbPath)
	if err != nil {
		fail(err)
	}
	store, err := db.Load(f)
	f.Close()
	if err != nil {
		fail(err)
	}
	cost, err := costFor(*dataset, *dim, *seed)
	if err != nil {
		fail(err)
	}
	if cost.Rows() != store.Dim() {
		fail(fmt.Errorf("cost matrix is %dx%d but database stores %d dimensions — check -dataset/-dim",
			cost.Rows(), cost.Cols(), store.Dim()))
	}
	if *queryI < 0 || *queryI >= store.Len() {
		fail(fmt.Errorf("query index %d out of range [0, %d)", *queryI, store.Len()))
	}

	eng, err := emdsearch.NewEngine(cost, emdsearch.Options{
		ReducedDims: *dprime,
		Method:      emdsearch.ReductionMethod(*method),
	})
	if err != nil {
		fail(err)
	}
	for i := 0; i < store.Len(); i++ {
		item := store.Item(i)
		if _, err := eng.Add(item.Label, item.Vector); err != nil {
			fail(err)
		}
	}
	if *dprime > 0 {
		fmt.Printf("building %s reduction to d'=%d over %d objects...\n", *method, *dprime, eng.Len())
		if err := eng.Build(); err != nil {
			fail(err)
		}
	}

	q := store.Vector(*queryI)
	fmt.Printf("query: object %d (label %q)\n", *queryI, store.Item(*queryI).Label)
	results, stats, err := eng.KNN(q, *k)
	if err != nil {
		fail(err)
	}
	fmt.Printf("\n%-6s  %-10s  %s\n", "rank", "distance", "object")
	for rank, r := range results {
		fmt.Printf("%-6d  %-10.5f  #%d (%s)\n", rank+1, r.Dist, r.Index, store.Item(r.Index).Label)
	}
	fmt.Printf("\nfilter statistics: %d refinements of %d objects", stats.Refinements, eng.Len())
	for i, e := range stats.StageEvaluations {
		fmt.Printf(", stage %d evaluated %d", i+1, e)
	}
	fmt.Println()
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "emdquery: %v\n", err)
	os.Exit(1)
}
