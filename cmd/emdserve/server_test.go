package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"emdsearch/internal/data"

	emdsearch "emdsearch"
)

// testServer builds a small sharded corpus behind the HTTP handler,
// optionally with a fault-injection hook, and returns it with a set of
// held-out query vectors.
func testServer(t *testing.T, hook func(ctx context.Context, shard, try int, op string) error) (*httptest.Server, *emdsearch.ShardSet, []emdsearch.Histogram) {
	t.Helper()
	ds, err := data.MusicSpectra(45, 16, 9)
	if err != nil {
		t.Fatal(err)
	}
	vecs, queries, err := ds.Split(5)
	if err != nil {
		t.Fatal(err)
	}
	set, err := emdsearch.NewShardSet(ds.Cost,
		emdsearch.Options{ReducedDims: 4, Seed: 1},
		emdsearch.ShardSetOptions{Shards: 3, ShardHook: hook, QuarantineAfter: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range vecs {
		if _, err := set.Add(ds.Items[i].Label, h); err != nil {
			t.Fatal(err)
		}
	}
	if err := set.Build(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer((&server{set: set, timeout: time.Second}).handler())
	t.Cleanup(ts.Close)
	return ts, set, queries
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func TestServeKNN(t *testing.T) {
	ts, set, queries := testServer(t, nil)

	resp := postJSON(t, ts.URL+"/knn", knnRequest{Q: queries[0], K: 4})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var ans emdsearch.ShardAnswer
	decodeBody(t, resp, &ans)
	if ans.Degraded || len(ans.Results) != 4 {
		t.Fatalf("answer = %+v", ans)
	}
	want, err := set.KNN(context.Background(), queries[0], 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range ans.Results {
		if r.Index != want.Results[i].Index || r.Dist != want.Results[i].Dist {
			t.Fatalf("pos %d: HTTP %+v, direct %+v", i, r, want.Results[i])
		}
	}
	if ans.Coverage.ShardsOK != 3 || ans.Coverage.ItemsUncovered != 0 {
		t.Fatalf("coverage = %+v", ans.Coverage)
	}

	// Malformed queries map to 400.
	resp = postJSON(t, ts.URL+"/knn", knnRequest{Q: queries[0][:3], K: 4})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("wrong-dim status %d, want 400", resp.StatusCode)
	}
	resp = postJSON(t, ts.URL+"/knn", knnRequest{Q: queries[0], K: 0})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("k=0 status %d, want 400", resp.StatusCode)
	}
	// GET is not a query.
	getResp, err := http.Get(ts.URL + "/knn")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /knn status %d, want 405", getResp.StatusCode)
	}
}

func TestServeRange(t *testing.T) {
	ts, set, queries := testServer(t, nil)
	probe, err := set.KNN(context.Background(), queries[1], 6)
	if err != nil {
		t.Fatal(err)
	}
	eps := probe.Results[len(probe.Results)-1].Dist
	resp := postJSON(t, ts.URL+"/range", rangeRequest{Q: queries[1], Eps: eps})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var ans emdsearch.ShardRangeAnswer
	decodeBody(t, resp, &ans)
	if ans.Degraded || len(ans.Results) == 0 {
		t.Fatalf("answer = %+v", ans)
	}
	for _, r := range ans.Results {
		if r.Dist > eps {
			t.Fatalf("result %+v beyond eps %v", r, eps)
		}
	}
}

func TestServeDegradedAndHealth(t *testing.T) {
	hook := func(ctx context.Context, shard, try int, op string) error {
		if shard == 1 {
			return errors.New("injected shard outage")
		}
		return nil
	}
	ts, _, queries := testServer(t, hook)

	resp := postJSON(t, ts.URL+"/knn", knnRequest{Q: queries[0], K: 4})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partial failure status %d, want 200 with Degraded body", resp.StatusCode)
	}
	var ans emdsearch.ShardAnswer
	decodeBody(t, resp, &ans)
	if !ans.Degraded || ans.Coverage.ShardsFailed != 1 || ans.Coverage.ItemsUncovered == 0 {
		t.Fatalf("degraded answer = %+v", ans.Coverage)
	}
	if len(ans.Anytime) == 0 {
		t.Fatal("degraded answer lost its interval view over JSON")
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health healthzResponse
	decodeBody(t, hresp, &health)
	if hresp.StatusCode != http.StatusOK || health.Status != "ok" || len(health.Shards) != 3 {
		t.Fatalf("healthz = %d %+v", hresp.StatusCode, health)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m emdsearch.ShardSetMetrics
	decodeBody(t, mresp, &m)
	if m.Queries < 1 || m.ShardFailures < 1 || len(m.PerShard) != 3 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestServeAllShardsDown(t *testing.T) {
	hook := func(ctx context.Context, shard, try int, op string) error {
		return errors.New("injected total outage")
	}
	ts, _, queries := testServer(t, hook)
	resp := postJSON(t, ts.URL+"/knn", knnRequest{Q: queries[0], K: 4})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("total outage status %d, want 503", resp.StatusCode)
	}
	var body struct {
		Error  string                 `json:"error"`
		Answer *emdsearch.ShardAnswer `json:"answer"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Error == "" || body.Answer == nil || body.Answer.Coverage.ShardsFailed != 3 {
		t.Fatalf("503 body = %+v", body)
	}
}

// TestServeReplicaFailover: with followers enabled and one primary
// dead, the HTTP answer is complete — full coverage, a zero-lag
// freshness entry — and /healthz surfaces per-shard replica status.
func TestServeReplicaFailover(t *testing.T) {
	hook := func(ctx context.Context, shard, try int, op string) error {
		if shard == 1 && op == "knn" {
			return errors.New("injected primary crash")
		}
		return nil
	}
	ds, err := data.MusicSpectra(45, 16, 9)
	if err != nil {
		t.Fatal(err)
	}
	vecs, queries, err := ds.Split(5)
	if err != nil {
		t.Fatal(err)
	}
	set, err := emdsearch.NewShardSet(ds.Cost,
		emdsearch.Options{ReducedDims: 4, Seed: 1},
		emdsearch.ShardSetOptions{Shards: 3, ShardHook: hook, QuarantineAfter: 100, Replicas: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	for i, h := range vecs {
		if _, err := set.Add(ds.Items[i].Label, h); err != nil {
			t.Fatal(err)
		}
	}
	if err := set.Build(); err != nil {
		t.Fatal(err)
	}
	if err := set.WaitReplicasCaughtUp(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer((&server{set: set, timeout: time.Second}).handler())
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/knn", knnRequest{Q: queries[0], K: 4})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var ans emdsearch.ShardAnswer
	decodeBody(t, resp, &ans)
	if ans.Degraded || ans.Coverage.ItemsUncovered != 0 || ans.Coverage.ShardsOK != 3 {
		t.Fatalf("failed-over answer = %+v", ans.Coverage)
	}
	fr := ans.Coverage.Freshness
	if len(fr) != 1 || fr[0].Shard != 1 || fr[0].Lag != 0 {
		t.Fatalf("freshness over JSON = %+v", fr)
	}
	if !ans.Outcomes[1].FailedOver {
		t.Fatalf("outcome = %+v, want failed_over", ans.Outcomes[1])
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health healthzResponse
	decodeBody(t, hresp, &health)
	if len(health.Replicas) != 3 {
		t.Fatalf("healthz replicas = %+v, want 3 entries", health.Replicas)
	}
	for i, rep := range health.Replicas {
		if rep.Shard != i || !rep.Bootstrapped || rep.Lag != 0 {
			t.Fatalf("healthz replica %d = %+v", i, rep)
		}
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m emdsearch.ShardSetMetrics
	decodeBody(t, mresp, &m)
	if m.FailoverServes < 1 || len(m.Replicas) != 3 {
		t.Fatalf("metrics = failovers %d, %d replica entries", m.FailoverServes, len(m.Replicas))
	}
}

// TestServeDurabilityRoundTrip: a set built with -wal-dir survives a
// restart — the second buildSet recovers the corpus from disk instead
// of regenerating, including mutations made after the initial load.
func TestServeDurabilityRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := serveConfig{shards: 3, n: 40, d: 16, dprime: 4, seed: 9, walDir: dir}

	set, recovered, err := buildSet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if recovered {
		t.Fatal("fresh directory reported a recovery")
	}
	// A post-build mutation lives only in the WAL until a checkpoint.
	ds, err := data.MusicSpectra(cfg.n, cfg.d, cfg.seed)
	if err != nil {
		t.Fatal(err)
	}
	gid, err := set.Add("late", ds.Items[0].Vector)
	if err != nil {
		t.Fatal(err)
	}
	q := ds.Items[1].Vector
	want, err := set.KNN(context.Background(), q, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Crash without a checkpoint: recovery must replay the WAL tail.
	if err := set.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	rec, recovered, err := buildSet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !recovered {
		t.Fatal("restart did not recover from the WAL directory")
	}
	if rec.Len() != gid+1 {
		t.Fatalf("recovered %d items, want %d", rec.Len(), gid+1)
	}
	got, err := rec.KNN(context.Background(), q, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Results {
		if got.Results[i] != want.Results[i] {
			t.Fatalf("pos %d: recovered %+v, want %+v", i, got.Results[i], want.Results[i])
		}
	}
	// buildSet's recovery path checkpointed: the logs restart empty, so
	// a further mutation is the only WAL record a third start replays.
	if _, err := rec.Add("later", ds.Items[2].Vector); err != nil {
		t.Fatal(err)
	}
	if err := rec.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	third, recovered, err := buildSet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !recovered || third.Len() != gid+2 {
		t.Fatalf("third start: recovered=%v len=%d, want %d", recovered, third.Len(), gid+2)
	}
	if err := third.CloseWAL(); err != nil {
		t.Fatal(err)
	}
}

// TestServeCheckpointLoop: the periodic loop checkpoints on its
// ticker, and closing stop flushes a final checkpoint and detaches
// the WALs — after which recovery needs no log replay at all.
func TestServeCheckpointLoop(t *testing.T) {
	dir := t.TempDir()
	cfg := serveConfig{shards: 2, n: 24, d: 16, dprime: 4, seed: 9, walDir: dir}
	set, _, err := buildSet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkpoints := func() int64 {
		var n int64
		for _, ps := range set.Metrics().PerShard {
			n += ps.Engine.Checkpoints
		}
		return n
	}
	before := checkpoints()

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		checkpointLoop(set, dir, 5*time.Millisecond, stop)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for checkpoints() <= before {
		if time.Now().After(deadline) {
			t.Fatal("periodic checkpoint never ran")
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	<-done

	// The final flush detached the logs: mutations now fail loudly
	// rather than silently losing durability...
	rec, stats, err := emdsearch.OpenShardSet(dir, set.Engine(0).Cost(), emdsearch.Options{ReducedDims: 4, Seed: 9}, emdsearch.ShardSetOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	// ...and the snapshots carry everything: zero records replayed.
	for i, st := range stats {
		if st.WALRecords != 0 || !st.SnapshotLoaded {
			t.Fatalf("shard %d recovery after flush: %+v, want snapshot-only", i, st)
		}
	}
	if rec.Len() != set.Len() {
		t.Fatalf("recovered %d items, want %d", rec.Len(), set.Len())
	}
}
