package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"emdsearch/internal/data"

	emdsearch "emdsearch"
)

// testServer builds a small sharded corpus behind the HTTP handler,
// optionally with a fault-injection hook, and returns it with a set of
// held-out query vectors.
func testServer(t *testing.T, hook func(ctx context.Context, shard, try int, op string) error) (*httptest.Server, *emdsearch.ShardSet, []emdsearch.Histogram) {
	t.Helper()
	ds, err := data.MusicSpectra(45, 16, 9)
	if err != nil {
		t.Fatal(err)
	}
	vecs, queries, err := ds.Split(5)
	if err != nil {
		t.Fatal(err)
	}
	set, err := emdsearch.NewShardSet(ds.Cost,
		emdsearch.Options{ReducedDims: 4, Seed: 1},
		emdsearch.ShardSetOptions{Shards: 3, ShardHook: hook, QuarantineAfter: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range vecs {
		if _, err := set.Add(ds.Items[i].Label, h); err != nil {
			t.Fatal(err)
		}
	}
	if err := set.Build(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer((&server{set: set, timeout: time.Second}).handler())
	t.Cleanup(ts.Close)
	return ts, set, queries
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func TestServeKNN(t *testing.T) {
	ts, set, queries := testServer(t, nil)

	resp := postJSON(t, ts.URL+"/knn", knnRequest{Q: queries[0], K: 4})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var ans emdsearch.ShardAnswer
	decodeBody(t, resp, &ans)
	if ans.Degraded || len(ans.Results) != 4 {
		t.Fatalf("answer = %+v", ans)
	}
	want, err := set.KNN(context.Background(), queries[0], 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range ans.Results {
		if r.Index != want.Results[i].Index || r.Dist != want.Results[i].Dist {
			t.Fatalf("pos %d: HTTP %+v, direct %+v", i, r, want.Results[i])
		}
	}
	if ans.Coverage.ShardsOK != 3 || ans.Coverage.ItemsUncovered != 0 {
		t.Fatalf("coverage = %+v", ans.Coverage)
	}

	// Malformed queries map to 400.
	resp = postJSON(t, ts.URL+"/knn", knnRequest{Q: queries[0][:3], K: 4})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("wrong-dim status %d, want 400", resp.StatusCode)
	}
	resp = postJSON(t, ts.URL+"/knn", knnRequest{Q: queries[0], K: 0})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("k=0 status %d, want 400", resp.StatusCode)
	}
	// GET is not a query.
	getResp, err := http.Get(ts.URL + "/knn")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /knn status %d, want 405", getResp.StatusCode)
	}
}

func TestServeRange(t *testing.T) {
	ts, set, queries := testServer(t, nil)
	probe, err := set.KNN(context.Background(), queries[1], 6)
	if err != nil {
		t.Fatal(err)
	}
	eps := probe.Results[len(probe.Results)-1].Dist
	resp := postJSON(t, ts.URL+"/range", rangeRequest{Q: queries[1], Eps: eps})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var ans emdsearch.ShardRangeAnswer
	decodeBody(t, resp, &ans)
	if ans.Degraded || len(ans.Results) == 0 {
		t.Fatalf("answer = %+v", ans)
	}
	for _, r := range ans.Results {
		if r.Dist > eps {
			t.Fatalf("result %+v beyond eps %v", r, eps)
		}
	}
}

func TestServeDegradedAndHealth(t *testing.T) {
	hook := func(ctx context.Context, shard, try int, op string) error {
		if shard == 1 {
			return errors.New("injected shard outage")
		}
		return nil
	}
	ts, _, queries := testServer(t, hook)

	resp := postJSON(t, ts.URL+"/knn", knnRequest{Q: queries[0], K: 4})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partial failure status %d, want 200 with Degraded body", resp.StatusCode)
	}
	var ans emdsearch.ShardAnswer
	decodeBody(t, resp, &ans)
	if !ans.Degraded || ans.Coverage.ShardsFailed != 1 || ans.Coverage.ItemsUncovered == 0 {
		t.Fatalf("degraded answer = %+v", ans.Coverage)
	}
	if len(ans.Anytime) == 0 {
		t.Fatal("degraded answer lost its interval view over JSON")
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health healthzResponse
	decodeBody(t, hresp, &health)
	if hresp.StatusCode != http.StatusOK || health.Status != "ok" || len(health.Shards) != 3 {
		t.Fatalf("healthz = %d %+v", hresp.StatusCode, health)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m emdsearch.ShardSetMetrics
	decodeBody(t, mresp, &m)
	if m.Queries < 1 || m.ShardFailures < 1 || len(m.PerShard) != 3 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestServeAllShardsDown(t *testing.T) {
	hook := func(ctx context.Context, shard, try int, op string) error {
		return errors.New("injected total outage")
	}
	ts, _, queries := testServer(t, hook)
	resp := postJSON(t, ts.URL+"/knn", knnRequest{Q: queries[0], K: 4})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("total outage status %d, want 503", resp.StatusCode)
	}
	var body struct {
		Error  string                 `json:"error"`
		Answer *emdsearch.ShardAnswer `json:"answer"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Error == "" || body.Answer == nil || body.Answer.Coverage.ShardsFailed != 3 {
		t.Fatalf("503 body = %+v", body)
	}
}
