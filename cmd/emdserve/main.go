// Command emdserve serves EMD similarity search over HTTP+JSON from a
// fault-tolerant sharded engine set. It builds a synthetic corpus (the
// music-spectra generator, as emdbench uses) partitioned round-robin
// across -shards gated engines and answers scatter-gather queries with
// certified partial-failure semantics: a slow or failing shard
// degrades the answer — with exact coverage accounting — instead of
// failing the query.
//
// Endpoints:
//
//	POST /knn        {"q": [...], "k": 5, "timeout_ms": 50}
//	POST /range      {"q": [...], "eps": 0.25, "timeout_ms": 50}
//	GET  /healthz    per-shard availability; 503 once every shard is quarantined
//	GET  /metrics    ShardSetMetrics JSON (scatter, retry, hedge, quarantine counters)
//	GET  /debug/vars expvar, including the published shard-set metrics
//
// Usage:
//
//	emdserve -addr :8080 -shards 4 -n 2000 -d 32 -dprime 8 -timeout 100ms
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"emdsearch/internal/data"

	emdsearch "emdsearch"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		shards  = flag.Int("shards", 4, "engine partitions")
		n       = flag.Int("n", 2000, "corpus size")
		d       = flag.Int("d", 32, "histogram dimensionality")
		dprime  = flag.Int("dprime", 8, "reduced filter dimensionality")
		workers = flag.Int("workers", 0, "per-shard refinement workers (0 = sequential)")
		seed    = flag.Int64("seed", 42, "corpus seed")
		timeout = flag.Duration("timeout", 100*time.Millisecond, "default per-query deadline (0 = none)")
		maxConc = flag.Int("max-concurrent", 0, "per-shard concurrent query cap (0 = gate default)")
	)
	flag.Parse()

	set, err := buildSet(*shards, *n, *d, *dprime, *workers, *seed, *maxConc)
	if err != nil {
		log.Fatalf("emdserve: %v", err)
	}
	if err := set.PublishExpvar("emdserve"); err != nil {
		log.Fatalf("emdserve: %v", err)
	}
	srv := &http.Server{
		Addr:    *addr,
		Handler: (&server{set: set, timeout: *timeout}).handler(),
	}

	// Graceful shutdown: stop accepting, drain in-flight queries.
	done := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("emdserve: shutdown: %v", err)
		}
		close(done)
	}()

	log.Printf("emdserve: %d items, %d shards, serving on %s", set.Len(), set.Shards(), *addr)
	if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("emdserve: %v", err)
	}
	<-done
}

// buildSet generates the corpus and loads it into a fresh shard set.
func buildSet(shards, n, d, dprime, workers int, seed int64, maxConc int) (*emdsearch.ShardSet, error) {
	ds, err := data.MusicSpectra(n, d, seed)
	if err != nil {
		return nil, err
	}
	set, err := emdsearch.NewShardSet(ds.Cost,
		emdsearch.Options{ReducedDims: dprime, Workers: workers, Seed: seed},
		emdsearch.ShardSetOptions{
			Shards: shards,
			Gate:   emdsearch.GateOptions{MaxConcurrent: maxConc},
		})
	if err != nil {
		return nil, err
	}
	for i, item := range ds.Items {
		if _, err := set.Add(item.Label, item.Vector); err != nil {
			return nil, fmt.Errorf("item %d: %w", i, err)
		}
	}
	if err := set.Build(); err != nil {
		return nil, err
	}
	return set, nil
}
