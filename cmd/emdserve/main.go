// Command emdserve serves EMD similarity search over HTTP+JSON from a
// fault-tolerant sharded engine set. It builds a synthetic corpus (the
// music-spectra generator, as emdbench uses) partitioned round-robin
// across -shards gated engines and answers scatter-gather queries with
// certified partial-failure semantics: a slow or failing shard
// degrades the answer — with exact coverage accounting — instead of
// failing the query.
//
// With -wal-dir, mutations are durable: each shard logs to
// shard-NNN.wal, a background loop checkpoints snapshots every
// -checkpoint-every, shutdown flushes a final checkpoint, and a
// restart pointed at the same directory recovers the corpus instead of
// regenerating it. With -replicas 1, each shard feeds a follower by
// WAL shipping and a crashed or quarantined primary fails over to it —
// byte-identical answers when the follower is caught up, an honest
// freshness-bounded Degraded certificate when it lags.
//
// Endpoints:
//
//	POST /knn        {"q": [...], "k": 5, "timeout_ms": 50}
//	POST /range      {"q": [...], "eps": 0.25, "timeout_ms": 50}
//	GET  /healthz    per-shard availability and replica lag; 503 once every shard is quarantined
//	GET  /metrics    ShardSetMetrics JSON (scatter, retry, hedge, quarantine, failover counters)
//	GET  /debug/vars expvar, including the published shard-set metrics
//
// Usage:
//
//	emdserve -addr :8080 -shards 4 -n 2000 -d 32 -dprime 8 -timeout 100ms \
//	         -wal-dir /var/lib/emdserve -checkpoint-every 1m -replicas 1
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"emdsearch/internal/data"

	emdsearch "emdsearch"
)

// serveConfig collects the corpus and set knobs main wires from flags.
type serveConfig struct {
	shards, n, d, dprime, workers, maxConc int
	seed                                   int64
	walDir                                 string
	replicas                               int
}

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		shards    = flag.Int("shards", 4, "engine partitions")
		n         = flag.Int("n", 2000, "corpus size")
		d         = flag.Int("d", 32, "histogram dimensionality")
		dprime    = flag.Int("dprime", 8, "reduced filter dimensionality")
		workers   = flag.Int("workers", 0, "per-shard refinement workers (0 = sequential)")
		seed      = flag.Int64("seed", 42, "corpus seed")
		timeout   = flag.Duration("timeout", 100*time.Millisecond, "default per-query deadline (0 = none)")
		maxConc   = flag.Int("max-concurrent", 0, "per-shard concurrent query cap (0 = gate default)")
		walDir    = flag.String("wal-dir", "", "directory for per-shard WALs and snapshots (empty = in-memory only)")
		ckptEvery = flag.Duration("checkpoint-every", time.Minute, "periodic checkpoint interval with -wal-dir (0 = checkpoint only at shutdown)")
		replicas  = flag.Int("replicas", 0, "followers per shard, 0 or 1; failed-over answers stay certified")
	)
	flag.Parse()

	cfg := serveConfig{
		shards: *shards, n: *n, d: *d, dprime: *dprime, workers: *workers,
		maxConc: *maxConc, seed: *seed, walDir: *walDir, replicas: *replicas,
	}
	set, recovered, err := buildSet(cfg)
	if err != nil {
		log.Fatalf("emdserve: %v", err)
	}
	if recovered {
		log.Printf("emdserve: recovered %d items from %s", set.Len(), *walDir)
	}
	if err := set.PublishExpvar("emdserve"); err != nil {
		log.Fatalf("emdserve: %v", err)
	}
	srv := &http.Server{
		Addr:    *addr,
		Handler: (&server{set: set, timeout: *timeout}).handler(),
	}

	stopCkpt := make(chan struct{})
	ckptDone := make(chan struct{})
	go func() {
		defer close(ckptDone)
		if *walDir != "" {
			checkpointLoop(set, *walDir, *ckptEvery, stopCkpt)
		}
	}()

	// Graceful shutdown: stop accepting, drain in-flight queries, then
	// flush a final checkpoint so the WALs restart empty.
	done := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("emdserve: shutdown: %v", err)
		}
		close(stopCkpt)
		<-ckptDone
		set.Close()
		close(done)
	}()

	log.Printf("emdserve: %d items, %d shards, %d replicas/shard, serving on %s",
		set.Len(), set.Shards(), *replicas, *addr)
	if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("emdserve: %v", err)
	}
	<-done
}

// buildSet loads the serving set: recovered from cfg.walDir when the
// directory already holds shard persistence, generated fresh
// otherwise. The returned bool reports which path ran. Either way,
// when cfg.walDir is set the returned set has open WALs and durable
// mutations.
func buildSet(cfg serveConfig) (*emdsearch.ShardSet, bool, error) {
	ds, err := data.MusicSpectra(cfg.n, cfg.d, cfg.seed)
	if err != nil {
		return nil, false, err
	}
	engOpts := emdsearch.Options{ReducedDims: cfg.dprime, Workers: cfg.workers, Seed: cfg.seed}
	setOpts := emdsearch.ShardSetOptions{
		Shards:   cfg.shards,
		Gate:     emdsearch.GateOptions{MaxConcurrent: cfg.maxConc},
		Replicas: cfg.replicas,
	}

	if cfg.walDir != "" {
		persisted, err := filepath.Glob(filepath.Join(cfg.walDir, "shard-*"))
		if err != nil {
			return nil, false, err
		}
		if len(persisted) > 0 {
			set, stats, err := emdsearch.OpenShardSet(cfg.walDir, ds.Cost, engOpts, setOpts)
			if err != nil {
				return nil, false, err
			}
			replayed := 0
			for _, st := range stats {
				replayed += st.WALRecords
			}
			log.Printf("emdserve: replayed %d WAL records over snapshots", replayed)
			// Resume logging, then fold the replayed tail into fresh
			// snapshots so the logs restart empty.
			if err := set.OpenWAL(cfg.walDir); err != nil {
				return nil, false, err
			}
			if err := set.Checkpoint(cfg.walDir); err != nil {
				return nil, false, err
			}
			if err := set.Build(); err != nil {
				return nil, false, err
			}
			return set, true, nil
		}
	}

	set, err := emdsearch.NewShardSet(ds.Cost, engOpts, setOpts)
	if err != nil {
		return nil, false, err
	}
	if cfg.walDir != "" {
		if err := os.MkdirAll(cfg.walDir, 0o755); err != nil {
			return nil, false, err
		}
		if err := set.OpenWAL(cfg.walDir); err != nil {
			return nil, false, err
		}
	}
	for i, item := range ds.Items {
		if _, err := set.Add(item.Label, item.Vector); err != nil {
			return nil, false, fmt.Errorf("item %d: %w", i, err)
		}
	}
	if err := set.Build(); err != nil {
		return nil, false, err
	}
	return set, false, nil
}

// checkpointLoop snapshots the set into dir every interval (0 = never)
// until stop closes, then flushes one final checkpoint and detaches
// the WALs — the graceful-shutdown path that makes the next start
// recover from snapshots with empty logs.
func checkpointLoop(set *emdsearch.ShardSet, dir string, every time.Duration, stop <-chan struct{}) {
	if every > 0 {
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				if err := set.Checkpoint(dir); err != nil {
					log.Printf("emdserve: periodic checkpoint: %v", err)
				}
			case <-stop:
				flushWAL(set, dir)
				return
			}
		}
	}
	<-stop
	flushWAL(set, dir)
}

// flushWAL writes the final checkpoint and closes the logs.
func flushWAL(set *emdsearch.ShardSet, dir string) {
	if err := set.Checkpoint(dir); err != nil {
		log.Printf("emdserve: final checkpoint: %v", err)
	}
	if err := set.CloseWAL(); err != nil {
		log.Printf("emdserve: close WAL: %v", err)
	}
}
