package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"strconv"
	"time"

	emdsearch "emdsearch"
)

// server wraps a ShardSet behind an HTTP+JSON API. Split from main so
// the handler is testable with httptest.
type server struct {
	set *emdsearch.ShardSet
	// timeout is the default per-query deadline when the request does
	// not carry its own; 0 means no deadline.
	timeout time.Duration
}

// handler builds the route table.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/knn", s.handleKNN)
	mux.HandleFunc("/range", s.handleRange)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

// knnRequest is the POST /knn body.
type knnRequest struct {
	Q emdsearch.Histogram `json:"q"`
	K int                 `json:"k"`
	// TimeoutMS, when > 0, overrides the server's default query
	// deadline. A query that exceeds it returns a certified partial
	// answer with Degraded set, not an error.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// rangeRequest is the POST /range body.
type rangeRequest struct {
	Q         emdsearch.Histogram `json:"q"`
	Eps       float64             `json:"eps"`
	TimeoutMS int                 `json:"timeout_ms,omitempty"`
}

// queryCtx derives the request's query context from its optional
// timeout override.
func (s *server) queryCtx(r *http.Request, timeoutMS int) (context.Context, context.CancelFunc) {
	timeout := s.timeout
	if timeoutMS > 0 {
		timeout = time.Duration(timeoutMS) * time.Millisecond
	}
	if timeout > 0 {
		return context.WithTimeout(r.Context(), timeout)
	}
	return context.WithCancel(r.Context())
}

func (s *server) handleKNN(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req knnRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad request body: %v", err), http.StatusBadRequest)
		return
	}
	ctx, cancel := s.queryCtx(r, req.TimeoutMS)
	defer cancel()
	ans, err := s.set.KNN(ctx, req.Q, req.K)
	if err != nil {
		writeQueryError(w, err, ans)
		return
	}
	writeJSON(w, http.StatusOK, ans)
}

func (s *server) handleRange(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req rangeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad request body: %v", err), http.StatusBadRequest)
		return
	}
	ctx, cancel := s.queryCtx(r, req.TimeoutMS)
	defer cancel()
	ans, err := s.set.Range(ctx, req.Q, req.Eps)
	if err != nil {
		writeQueryError(w, err, ans)
		return
	}
	writeJSON(w, http.StatusOK, ans)
}

// healthzResponse is the GET /healthz body. Replicas is present only
// when the set runs with followers: per-shard ship status, so an
// operator can see replication lag before deciding a failover answer's
// freshness bound is acceptable.
type healthzResponse struct {
	Status   string                   `json:"status"`
	Shards   []emdsearch.ShardHealth  `json:"shards"`
	Replicas []emdsearch.ShardReplica `json:"replicas,omitempty"`
}

// handleHealthz reports per-shard availability: 200 while at least one
// shard can serve, 503 once every shard is quarantined — the signal a
// load balancer needs to stop routing here.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := healthzResponse{Status: "ok"}
	open := 0
	for i := 0; i < s.set.Shards(); i++ {
		h := s.set.Health(i)
		resp.Shards = append(resp.Shards, h)
		if h.State == "open" {
			open++
		}
		if rep, ok := s.set.Replica(i); ok {
			resp.Replicas = append(resp.Replicas, rep)
		}
	}
	code := http.StatusOK
	if open == s.set.Shards() {
		resp.Status = "unavailable"
		code = http.StatusServiceUnavailable
	} else if open > 0 {
		resp.Status = "degraded"
	}
	writeJSON(w, code, resp)
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.set.Metrics())
}

// writeQueryError maps the engine's typed errors onto HTTP statuses:
// bad query 400, overload 429 with Retry-After, total shard outage (or
// anything else) 503 — with the degraded certificate attached when the
// set produced one, so even a failed scatter tells the client exactly
// what was not covered.
func writeQueryError(w http.ResponseWriter, err error, ans any) {
	var ov *emdsearch.OverloadError
	switch {
	case errors.Is(err, emdsearch.ErrBadQuery):
		http.Error(w, err.Error(), http.StatusBadRequest)
	case errors.As(err, &ov):
		w.Header().Set("Retry-After", strconv.FormatFloat(ov.RetryAfter.Seconds(), 'f', 3, 64))
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	default:
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"error":  err.Error(),
			"answer": ans,
		})
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
