// Command emdgen generates one of the synthetic evaluation corpora and
// writes it as a binary database file that cmd/emdquery (and any code
// using internal/db.Load) can open.
//
// Usage:
//
//	emdgen -dataset retina|irma|color|music|words|gaussian -n 1000 -seed 1 -out retina.db
package main

import (
	"flag"
	"fmt"
	"os"

	"emdsearch/internal/data"
)

func main() {
	var (
		dataset = flag.String("dataset", "retina", "corpus: retina, irma, color, music, words, gaussian")
		n       = flag.Int("n", 1000, "number of objects")
		dim     = flag.Int("dim", 48, "dimensionality (music and words corpora only)")
		seed    = flag.Int64("seed", 1, "generator seed")
		out     = flag.String("out", "", "output file (required)")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "emdgen: -out is required")
		os.Exit(2)
	}

	var ds *data.Dataset
	var err error
	switch *dataset {
	case "retina":
		ds, err = data.Retina(*n, *seed)
	case "irma":
		ds, err = data.IRMA(*n, *seed)
	case "color":
		ds, err = data.ColorImages(*n, *seed)
	case "music":
		ds, err = data.MusicSpectra(*n, *dim, *seed)
	case "words":
		ds, err = data.Words(*n, *dim, *seed)
	case "gaussian":
		ds, err = data.GaussianMixtures(*n, *dim, 3, *seed)
	default:
		fmt.Fprintf(os.Stderr, "emdgen: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "emdgen: %v\n", err)
		os.Exit(1)
	}

	database, err := ds.ToDatabase()
	if err != nil {
		fmt.Fprintf(os.Stderr, "emdgen: %v\n", err)
		os.Exit(1)
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "emdgen: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := database.Save(f); err != nil {
		fmt.Fprintf(os.Stderr, "emdgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d objects, %d dimensions (%s)\n", *out, database.Len(), database.Dim(), ds.Name)
}
