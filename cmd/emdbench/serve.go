package main

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"emdsearch"
	"emdsearch/internal/data"
)

// serveConfig sizes the concurrent-serving benchmark.
type serveConfig struct {
	n, d, queries int
	workers       int // per-query refinement workers (Options.Workers)
	concurrency   int // concurrent query clients
	seed          int64
	// timeout, when positive, gives every query a deadline via KNNCtx;
	// queries that miss it return certified anytime answers and are
	// counted as degraded. Zero keeps the context-free KNN path.
	timeout time.Duration
	// wal, when non-empty, attaches a write-ahead log at that path, so
	// the background writer's Adds each pay a durable fsynced append.
	wal string
	// gate routes every query through an admission Gate so closed-loop
	// serving exercises the limiter and breaker paths.
	gate bool
	// overload switches serve into the open-loop overload sweep
	// (runOverload) instead of the closed-loop benchmark.
	overload bool
	// chaos is the per-refinement probability of an injected solver
	// panic (and 2x that of an injected slow solve); 0 disables.
	chaos float64
	// maxConcurrent / maxQueue size the admission gate; zero means the
	// gate defaults (GOMAXPROCS / 2x).
	maxConcurrent, maxQueue int
	// out, when non-empty, is where the overload sweep writes its JSON
	// report.
	out string
}

// reopenWALBackoff heals a broken write-ahead log via the engine's
// jittered capped-exponential retry loop.
func reopenWALBackoff(eng *emdsearch.Engine, attempts int) error {
	return eng.ReopenWALRetry(context.Background(), attempts)
}

// runServe benchmarks the engine as a concurrent query server: it
// builds one engine and fires k-NN queries from `concurrency` client
// goroutines, each query refining with `workers` goroutines, while a
// background goroutine keeps mutating the index (Add) to exercise the
// snapshot path. It reports throughput, tail latency (p50/p95/p99) and
// the engine's aggregated Metrics. With a per-query timeout the
// queries run through KNNCtx: missed deadlines degrade to certified
// anytime answers instead of blowing the tail, and the report shows
// how many queries degraded.
func runServe(cfg serveConfig) error {
	ds, err := data.MusicSpectra(cfg.n+16, cfg.d, cfg.seed)
	if err != nil {
		return err
	}
	vecs, queries, err := ds.Split(16)
	if err != nil {
		return err
	}
	dprime := cfg.d / 8
	if dprime < 2 {
		dprime = 2
	}
	eng, err := emdsearch.NewEngine(ds.Cost, emdsearch.Options{
		ReducedDims: dprime,
		Workers:     cfg.workers,
		Seed:        cfg.seed,
	})
	if err != nil {
		return err
	}
	for i, h := range vecs {
		if _, err := eng.Add(ds.Items[i].Label, h); err != nil {
			return err
		}
	}
	if err := eng.Build(); err != nil {
		return err
	}
	if cfg.wal != "" {
		if err := eng.OpenWAL(cfg.wal); err != nil {
			return err
		}
		defer func() {
			if err := eng.CloseWAL(); err != nil {
				fmt.Printf("serve: close WAL: %v\n", err)
			}
		}()
	}

	if cfg.timeout > 0 {
		fmt.Printf("serve: n=%d d=%d d'=%d queries=%d concurrency=%d workers=%d timeout=%v\n",
			len(vecs), cfg.d, dprime, cfg.queries, cfg.concurrency, cfg.workers, cfg.timeout)
	} else {
		fmt.Printf("serve: n=%d d=%d d'=%d queries=%d concurrency=%d workers=%d\n",
			len(vecs), cfg.d, dprime, cfg.queries, cfg.concurrency, cfg.workers)
	}

	var gate *emdsearch.Gate
	if cfg.gate {
		gate = emdsearch.NewGate(eng, emdsearch.GateOptions{
			MaxConcurrent: cfg.maxConcurrent,
			MaxQueue:      cfg.maxQueue,
		})
	}

	// Background writer: one Add per millisecond, forcing snapshot
	// rebuilds under load the way a live ingest would. A broken WAL is
	// healed in place with capped-backoff reopens instead of killing
	// the writer.
	stopWriter := make(chan struct{})
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for i := 0; ; i++ {
			select {
			case <-stopWriter:
				return
			case <-tick.C:
				if _, err := eng.Add("ingest", vecs[i%len(vecs)]); err != nil {
					if errors.Is(err, emdsearch.ErrWALBroken) {
						if rerr := reopenWALBackoff(eng, 10); rerr != nil {
							fmt.Printf("serve: WAL stayed broken after backoff: %v\n", rerr)
							return
						}
						continue
					}
					return
				}
			}
		}
	}()

	var (
		next     int64
		degraded int64
		anytime  int64 // certified items carried by degraded answers
		shed     int64 // gate mode: queries rejected with ErrOverloaded
		wg       sync.WaitGroup
	)
	// Per-query latencies, indexed by query number: lock-free writes,
	// and the tail percentiles come out of one sort afterwards.
	latencies := make([]time.Duration, cfg.queries)
	start := time.Now()
	for c := 0; c < cfg.concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				qi := atomic.AddInt64(&next, 1) - 1
				if qi >= int64(cfg.queries) {
					return
				}
				q := queries[qi%int64(len(queries))]
				t0 := time.Now()
				switch {
				case gate != nil:
					ctx := context.Background()
					cancel := context.CancelFunc(func() {})
					if cfg.timeout > 0 {
						ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
					}
					ans, err := gate.KNN(ctx, q, 10)
					cancel()
					switch {
					case errors.Is(err, emdsearch.ErrOverloaded):
						atomic.AddInt64(&shed, 1)
					case err != nil && ans == nil:
						fmt.Printf("serve: query error: %v\n", err)
						return
					case ans.Degraded:
						atomic.AddInt64(&degraded, 1)
						atomic.AddInt64(&anytime, int64(len(ans.Anytime)))
					}
				case cfg.timeout > 0:
					ctx, cancel := context.WithTimeout(context.Background(), cfg.timeout)
					ans, err := eng.KNNCtx(ctx, q, 10)
					cancel()
					if err != nil && ans == nil {
						fmt.Printf("serve: query error: %v\n", err)
						return
					}
					if ans.Degraded {
						atomic.AddInt64(&degraded, 1)
						atomic.AddInt64(&anytime, int64(len(ans.Anytime)))
					}
				default:
					if _, _, err := eng.KNN(q, 10); err != nil {
						fmt.Printf("serve: query error: %v\n", err)
						return
					}
				}
				latencies[qi] = time.Since(t0)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stopWriter)
	writerWG.Wait()

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	var totalNS int64
	for _, l := range latencies {
		totalNS += int64(l)
	}
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(latencies)-1))
		return latencies[i].Round(time.Microsecond)
	}
	qps := float64(cfg.queries) / elapsed.Seconds()
	meanLat := time.Duration(totalNS / int64(cfg.queries))
	fmt.Printf("served %d queries in %v: %.1f qps, mean latency %v\n",
		cfg.queries, elapsed.Round(time.Millisecond), qps, meanLat.Round(time.Microsecond))
	fmt.Printf("latency: p50=%v p95=%v p99=%v max=%v\n",
		pct(0.50), pct(0.95), pct(0.99), pct(1.0))
	if cfg.timeout > 0 || gate != nil {
		fmt.Printf("deadline: %d/%d queries degraded (%.1f%%), %d certified anytime items returned\n",
			degraded, cfg.queries, 100*float64(degraded)/float64(cfg.queries), anytime)
	}
	if gate != nil {
		gm := gate.Metrics()
		fmt.Printf("gate: admitted=%d queued=%d shed=%d (client-observed shed=%d) degraded=%d breaker=%s est_service=%v\n",
			gm.Admitted, gm.Queued, gm.Shed, shed, gm.Degraded, gm.BreakerState,
			gm.EstServiceTime.Round(time.Microsecond))
	}

	m := eng.Metrics()
	fmt.Printf("metrics: knn=%d errors=%d cancelled=%d degraded=%d snapshot_builds=%d pulled=%d refinements=%d skipped=%d\n",
		m.KNNQueries, m.QueryErrors, m.QueriesCancelled, m.QueriesDeadlineDegraded,
		m.SnapshotBuilds, m.Pulled, m.Refinements, m.RefinementsSkipped)
	if cfg.wal != "" {
		fmt.Printf("         wal_appends=%d (durable ingest at %s)\n", m.WALAppends, cfg.wal)
	}
	fmt.Printf("         filter=%v refine=%v query=%v\n",
		m.FilterTime.Round(time.Millisecond), m.RefineTime.Round(time.Millisecond), m.QueryTime.Round(time.Millisecond))
	for name, st := range m.Stages {
		fmt.Printf("         stage %-12s evals=%-8d pruned=%-8d time=%v\n",
			name, st.Evaluations, st.Pruned, st.Time.Round(time.Millisecond))
	}
	return nil
}
