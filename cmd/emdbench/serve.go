package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"emdsearch"
	"emdsearch/internal/data"
)

// serveConfig sizes the concurrent-serving benchmark.
type serveConfig struct {
	n, d, queries int
	workers       int // per-query refinement workers (Options.Workers)
	concurrency   int // concurrent query clients
	seed          int64
}

// runServe benchmarks the engine as a concurrent query server: it
// builds one engine and fires k-NN queries from `concurrency` client
// goroutines, each query refining with `workers` goroutines, while a
// background goroutine keeps mutating the index (Add) to exercise the
// snapshot path. It reports throughput, latency and the engine's
// aggregated Metrics.
func runServe(cfg serveConfig) error {
	ds, err := data.MusicSpectra(cfg.n+16, cfg.d, cfg.seed)
	if err != nil {
		return err
	}
	vecs, queries, err := ds.Split(16)
	if err != nil {
		return err
	}
	dprime := cfg.d / 8
	if dprime < 2 {
		dprime = 2
	}
	eng, err := emdsearch.NewEngine(ds.Cost, emdsearch.Options{
		ReducedDims: dprime,
		Workers:     cfg.workers,
		Seed:        cfg.seed,
	})
	if err != nil {
		return err
	}
	for i, h := range vecs {
		if _, err := eng.Add(ds.Items[i].Label, h); err != nil {
			return err
		}
	}
	if err := eng.Build(); err != nil {
		return err
	}

	fmt.Printf("serve: n=%d d=%d d'=%d queries=%d concurrency=%d workers=%d\n",
		len(vecs), cfg.d, dprime, cfg.queries, cfg.concurrency, cfg.workers)

	// Background writer: one Add per millisecond, forcing snapshot
	// rebuilds under load the way a live ingest would.
	stopWriter := make(chan struct{})
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for i := 0; ; i++ {
			select {
			case <-stopWriter:
				return
			case <-tick.C:
				if _, err := eng.Add("ingest", vecs[i%len(vecs)]); err != nil {
					return
				}
			}
		}
	}()

	var (
		next      int64
		latencyNS int64
		wg        sync.WaitGroup
	)
	start := time.Now()
	for c := 0; c < cfg.concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				qi := atomic.AddInt64(&next, 1) - 1
				if qi >= int64(cfg.queries) {
					return
				}
				q := queries[qi%int64(len(queries))]
				t0 := time.Now()
				if _, _, err := eng.KNN(q, 10); err != nil {
					fmt.Printf("serve: query error: %v\n", err)
					return
				}
				atomic.AddInt64(&latencyNS, int64(time.Since(t0)))
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stopWriter)
	writerWG.Wait()

	qps := float64(cfg.queries) / elapsed.Seconds()
	meanLat := time.Duration(latencyNS / int64(cfg.queries))
	fmt.Printf("served %d queries in %v: %.1f qps, mean latency %v\n",
		cfg.queries, elapsed.Round(time.Millisecond), qps, meanLat.Round(time.Microsecond))

	m := eng.Metrics()
	fmt.Printf("metrics: knn=%d errors=%d snapshot_builds=%d pulled=%d refinements=%d skipped=%d\n",
		m.KNNQueries, m.QueryErrors, m.SnapshotBuilds, m.Pulled, m.Refinements, m.RefinementsSkipped)
	fmt.Printf("         filter=%v refine=%v query=%v\n",
		m.FilterTime.Round(time.Millisecond), m.RefineTime.Round(time.Millisecond), m.QueryTime.Round(time.Millisecond))
	for name, st := range m.Stages {
		fmt.Printf("         stage %-12s evals=%-8d pruned=%-8d time=%v\n",
			name, st.Evaluations, st.Pruned, st.Time.Round(time.Millisecond))
	}
	return nil
}
