package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"emdsearch"
	"emdsearch/internal/data"
)

// filterConfig sizes the filter-stage benchmark.
type filterConfig struct {
	n, d, queries int
	k             int
	seed          int64
	out           string // JSON report path ("" = stdout only)
}

// filterVariant is one measured engine layout.
type filterVariant struct {
	Name        string  `json:"name"`
	Block       int     `json:"block"`
	Quantized   bool    `json:"quantized"`
	Stage0NS    int64   `json:"stage0_ns"`
	ItemsPerSec float64 `json:"items_per_sec"`
	// SpeedupVsReference is reference stage-0 time over this variant's.
	SpeedupVsReference float64 `json:"speedup_vs_reference"`
}

// filterReport is the machine-readable result of -exp filter, written
// to -out as JSON (the CI benchmark smoke job archives it as
// BENCH_filter.json).
type filterReport struct {
	N       int   `json:"n"`
	D       int   `json:"d"`
	DPrime  int   `json:"dprime"`
	Queries int   `json:"queries"`
	K       int   `json:"k"`
	Seed    int64 `json:"seed"`

	// ReferenceNS is the summed first-stage (Red-IM) time of the
	// per-item reference scan across all queries.
	ReferenceNS int64           `json:"reference_ns"`
	Variants    []filterVariant `json:"variants"`

	// BestSpeedup is the largest quantized-variant speedup; the
	// acceptance target is SpeedupTarget.
	BestSpeedup   float64 `json:"best_speedup"`
	SpeedupTarget float64 `json:"speedup_target"`

	ResultsIdentical bool `json:"results_identical"`
}

// filterSpeedupTarget is the acceptance bar for the quantized columnar
// first stage over the per-item reference scan.
const filterSpeedupTarget = 3.0

// runFilter benchmarks the first filter stage across storage layouts:
// the retained per-item reference scan, the columnar SoA Red-IM kernel
// over a block-size sweep, and the int16-quantized tangent kernel over
// the same sweep. Every variant serves the identical k-NN workload;
// answers must stay bit-identical (the layouts are certified
// evaluation-order refactors, not approximations). Reported throughput
// is first-stage only — stats.Stages[0].Duration — so refinement cost
// cannot dilute the comparison.
func runFilter(cfg filterConfig) error {
	ds, err := data.MusicSpectra(cfg.n+16, cfg.d, cfg.seed)
	if err != nil {
		return err
	}
	vecs, queries, err := ds.Split(16)
	if err != nil {
		return err
	}
	if cfg.queries < len(queries) {
		queries = queries[:cfg.queries]
	}
	dprime := cfg.d / 4
	if dprime < 2 {
		dprime = 2
	}

	build := func(mut func(*emdsearch.Options)) (*emdsearch.Engine, error) {
		opts := emdsearch.Options{
			ReducedDims: dprime,
			SampleSize:  24,
			Seed:        cfg.seed,
		}
		mut(&opts)
		eng, err := emdsearch.NewEngine(ds.Cost, opts)
		if err != nil {
			return nil, err
		}
		for i, h := range vecs {
			if _, err := eng.Add(ds.Items[i].Label, h); err != nil {
				return nil, err
			}
		}
		if err := eng.Build(); err != nil {
			return nil, err
		}
		return eng, nil
	}

	// run serves the workload and returns the answers plus the summed
	// first-stage duration.
	run := func(eng *emdsearch.Engine) ([][]emdsearch.Result, time.Duration, error) {
		// Warm the snapshot (and quantization) outside the timed region.
		if _, _, err := eng.KNN(queries[0], cfg.k); err != nil {
			return nil, 0, err
		}
		results := make([][]emdsearch.Result, 0, cfg.queries)
		var stage0 time.Duration
		for qi := 0; qi < cfg.queries; qi++ {
			res, stats, err := eng.KNN(queries[qi%len(queries)], cfg.k)
			if err != nil {
				return nil, 0, err
			}
			if len(stats.Stages) == 0 {
				return nil, 0, fmt.Errorf("no filter stages in query stats")
			}
			stage0 += stats.Stages[0].Duration
			results = append(results, res)
		}
		return results, stage0, nil
	}

	fmt.Printf("filter: n=%d d=%d d'=%d queries=%d k=%d seed=%d\n",
		len(vecs), cfg.d, dprime, cfg.queries, cfg.k, cfg.seed)

	refEng, err := build(func(o *emdsearch.Options) { o.ReferenceScan = true })
	if err != nil {
		return err
	}
	refRes, refStage0, err := run(refEng)
	if err != nil {
		return fmt.Errorf("reference run: %w", err)
	}
	scanned := float64(len(vecs)) * float64(cfg.queries)
	fmt.Printf("%-24s stage0=%-12v %14.0f items/s\n",
		"reference", refStage0.Round(time.Microsecond), scanned/refStage0.Seconds())

	rep := filterReport{
		N: len(vecs), D: cfg.d, DPrime: dprime,
		Queries: cfg.queries, K: cfg.k, Seed: cfg.seed,
		ReferenceNS:      int64(refStage0),
		SpeedupTarget:    filterSpeedupTarget,
		ResultsIdentical: true,
	}

	for _, quantized := range []bool{false, true} {
		for _, block := range []int{64, 256, 1024} {
			name := fmt.Sprintf("columnar/b%d", block)
			if quantized {
				name = fmt.Sprintf("quantized/b%d", block)
			}
			q, b := quantized, block
			eng, err := build(func(o *emdsearch.Options) {
				o.FilterBlockSize = b
				o.DisableQuantizedFilter = !q
			})
			if err != nil {
				return err
			}
			res, stage0, err := run(eng)
			if err != nil {
				return fmt.Errorf("%s run: %w", name, err)
			}
			if !sameResults(refRes, res) {
				rep.ResultsIdentical = false
				fmt.Printf("%-24s DIVERGED from reference\n", name)
				continue
			}
			v := filterVariant{
				Name:               name,
				Block:              block,
				Quantized:          quantized,
				Stage0NS:           int64(stage0),
				ItemsPerSec:        scanned / stage0.Seconds(),
				SpeedupVsReference: float64(refStage0) / float64(stage0),
			}
			rep.Variants = append(rep.Variants, v)
			if quantized && v.SpeedupVsReference > rep.BestSpeedup {
				rep.BestSpeedup = v.SpeedupVsReference
			}
			fmt.Printf("%-24s stage0=%-12v %14.0f items/s  %6.2fx\n",
				name, stage0.Round(time.Microsecond), v.ItemsPerSec, v.SpeedupVsReference)
		}
	}

	fmt.Printf("results identical: %v  best quantized speedup: %.2fx (target %.1fx)\n",
		rep.ResultsIdentical, rep.BestSpeedup, rep.SpeedupTarget)

	if cfg.out != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(cfg.out, buf, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", cfg.out)
	}
	if !rep.ResultsIdentical {
		return fmt.Errorf("a columnar layout diverged from the reference scan")
	}
	return nil
}
