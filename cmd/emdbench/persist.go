package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"emdsearch"
	"emdsearch/internal/data"
)

// persistConfig sizes the durability benchmark.
type persistConfig struct {
	n, d int
	seed int64
	out  string // JSON report path ("" = stdout only)
}

// persistReport is the machine-readable result of -exp persist,
// written to -out as JSON (the CI benchmark smoke job archives it as
// BENCH_persist.json).
type persistReport struct {
	N    int   `json:"n"`
	D    int   `json:"d"`
	Seed int64 `json:"seed"`

	SnapshotBytes int64 `json:"snapshot_bytes"`
	SaveNS        int64 `json:"save_ns"`
	LoadNS        int64 `json:"load_ns"`

	WALAppends    int     `json:"wal_appends"`
	WALBytes      int64   `json:"wal_bytes"`
	WALAppendNS   int64   `json:"wal_append_ns"`
	AppendsPerSec float64 `json:"appends_per_sec"`

	CheckpointNS   int64 `json:"checkpoint_ns"`
	RecoverNS      int64 `json:"recover_ns"`
	RecoverRecords int   `json:"recover_records"`
}

// runPersist benchmarks the durability layer end to end: atomic
// snapshot save and load, fsynced WAL append throughput (the cost a
// logged Add pays over an in-memory one), checkpoint latency, and
// recovery (snapshot load + WAL replay) after a simulated crash. The
// recovered engine is verified against the live one before any number
// is reported.
func runPersist(cfg persistConfig) error {
	ds, err := data.MusicSpectra(cfg.n, cfg.d, cfg.seed)
	if err != nil {
		return err
	}
	vecs := ds.Histograms()
	dprime := cfg.d / 4
	if dprime < 2 {
		dprime = 2
	}
	dir, err := os.MkdirTemp("", "emdbench-persist-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	snapPath := filepath.Join(dir, "engine.snap")
	walPath := filepath.Join(dir, "engine.wal")

	opts := emdsearch.Options{ReducedDims: dprime, SampleSize: 24, Seed: cfg.seed}
	eng, err := emdsearch.NewEngine(ds.Cost, opts)
	if err != nil {
		return err
	}
	for i, h := range vecs {
		if _, err := eng.Add(ds.Items[i].Label, h); err != nil {
			return err
		}
	}
	if err := eng.Build(); err != nil {
		return err
	}

	rep := persistReport{N: len(vecs), D: cfg.d, Seed: cfg.seed}

	t0 := time.Now()
	if err := eng.SaveFile(snapPath); err != nil {
		return err
	}
	rep.SaveNS = int64(time.Since(t0))
	if st, err := os.Stat(snapPath); err == nil {
		rep.SnapshotBytes = st.Size()
	}

	t0 = time.Now()
	loaded, err := emdsearch.LoadEngineFile(snapPath, ds.Cost, opts)
	if err != nil {
		return err
	}
	rep.LoadNS = int64(time.Since(t0))
	if loaded.Len() != eng.Len() {
		return fmt.Errorf("loaded %d items, saved %d", loaded.Len(), eng.Len())
	}

	// WAL append throughput: every Add below pays a fsynced log write
	// before it is acknowledged.
	if err := eng.OpenWAL(walPath); err != nil {
		return err
	}
	t0 = time.Now()
	for i, h := range vecs {
		if _, err := eng.Add(ds.Items[i].Label, h); err != nil {
			return err
		}
		if i%7 == 6 {
			if err := eng.Delete(eng.Len() - 1); err != nil {
				return err
			}
		}
	}
	rep.WALAppendNS = int64(time.Since(t0))
	rep.WALAppends = int(eng.Metrics().WALAppends)
	rep.AppendsPerSec = float64(rep.WALAppends) / time.Duration(rep.WALAppendNS).Seconds()
	if st, err := os.Stat(walPath); err == nil {
		rep.WALBytes = st.Size()
	}

	t0 = time.Now()
	if err := eng.Checkpoint(snapPath); err != nil {
		return err
	}
	rep.CheckpointNS = int64(time.Since(t0))

	// Post-checkpoint mutations, then crash-and-recover: the log tail
	// replays over the checkpoint snapshot.
	for i := 0; i < len(vecs)/4; i++ {
		if _, err := eng.Add("post", vecs[i]); err != nil {
			return err
		}
	}
	if err := eng.CloseWAL(); err != nil {
		return err
	}
	t0 = time.Now()
	rec, stats, err := emdsearch.RecoverEngine(snapPath, walPath, ds.Cost, opts)
	if err != nil {
		return err
	}
	rep.RecoverNS = int64(time.Since(t0))
	rep.RecoverRecords = stats.WALRecords
	if rec.Len() != eng.Len() || rec.Alive() != eng.Alive() {
		return fmt.Errorf("recovered %d items (%d alive), want %d (%d alive)",
			rec.Len(), rec.Alive(), eng.Len(), eng.Alive())
	}

	fmt.Printf("persist: n=%d d=%d d'=%d\n", rep.N, cfg.d, dprime)
	fmt.Printf("snapshot: save=%v load=%v size=%dB\n",
		time.Duration(rep.SaveNS).Round(time.Microsecond),
		time.Duration(rep.LoadNS).Round(time.Microsecond), rep.SnapshotBytes)
	fmt.Printf("wal: %d fsynced appends in %v (%.0f appends/s, %dB)\n",
		rep.WALAppends, time.Duration(rep.WALAppendNS).Round(time.Millisecond),
		rep.AppendsPerSec, rep.WALBytes)
	fmt.Printf("checkpoint: %v\n", time.Duration(rep.CheckpointNS).Round(time.Microsecond))
	fmt.Printf("recover: %v (%d records replayed over the snapshot)\n",
		time.Duration(rep.RecoverNS).Round(time.Microsecond), rep.RecoverRecords)

	if cfg.out != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.out, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("report written to %s\n", cfg.out)
	}
	return nil
}
