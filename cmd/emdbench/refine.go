package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"time"

	"emdsearch"
	"emdsearch/internal/data"
)

// refineConfig sizes the refinement-kernel benchmark.
type refineConfig struct {
	n, d, queries int
	k             int
	seed          int64
	out           string // JSON report path ("" = stdout only)
}

// refineReport is the machine-readable result of -exp refine, written
// to -out as JSON (the CI benchmark smoke job archives it as
// BENCH_refine.json).
type refineReport struct {
	N       int   `json:"n"`
	D       int   `json:"d"`
	DPrime  int   `json:"dprime"`
	Queries int   `json:"queries"`
	K       int   `json:"k"`
	Seed    int64 `json:"seed"`

	UnboundedNS int64   `json:"unbounded_ns"`
	BoundedNS   int64   `json:"bounded_ns"`
	Speedup     float64 `json:"speedup"`

	ResultsIdentical bool `json:"results_identical"`

	Refinements    int64   `json:"refinements"`
	RefinesAborted int64   `json:"refines_aborted"`
	WarmStartHits  int64   `json:"warm_start_hits"`
	AvgRefineRows  float64 `json:"avg_refine_rows"`
	AvgRefineCols  float64 `json:"avg_refine_cols"`
}

// runRefine benchmarks the threshold-aware exact-EMD refinement kernel
// against the legacy unbounded one on the same engine configuration as
// BenchmarkRefineEngineKNN: it builds two engines that differ only in
// Options.UnboundedRefine, serves the identical k-NN workload on each,
// checks the answers are bit-identical, and reports wall times, the
// speedup and the bounded kernel's refinement counters.
func runRefine(cfg refineConfig) error {
	ds, err := data.MusicSpectra(cfg.n+16, cfg.d, cfg.seed)
	if err != nil {
		return err
	}
	vecs, queries, err := ds.Split(16)
	if err != nil {
		return err
	}
	if cfg.queries < len(queries) {
		queries = queries[:cfg.queries]
	}
	dprime := cfg.d / 4
	if dprime < 2 {
		dprime = 2
	}

	build := func(unbounded bool) (*emdsearch.Engine, error) {
		eng, err := emdsearch.NewEngine(ds.Cost, emdsearch.Options{
			ReducedDims:     dprime,
			SampleSize:      24,
			Seed:            cfg.seed,
			UnboundedRefine: unbounded,
		})
		if err != nil {
			return nil, err
		}
		for i, h := range vecs {
			if _, err := eng.Add(ds.Items[i].Label, h); err != nil {
				return nil, err
			}
		}
		if err := eng.Build(); err != nil {
			return nil, err
		}
		return eng, nil
	}

	run := func(eng *emdsearch.Engine) ([][]emdsearch.Result, time.Duration, error) {
		results := make([][]emdsearch.Result, 0, cfg.queries)
		start := time.Now()
		for qi := 0; qi < cfg.queries; qi++ {
			res, _, err := eng.KNN(queries[qi%len(queries)], cfg.k)
			if err != nil {
				return nil, 0, err
			}
			results = append(results, res)
		}
		return results, time.Since(start), nil
	}

	fmt.Printf("refine: n=%d d=%d d'=%d queries=%d k=%d seed=%d\n",
		len(vecs), cfg.d, dprime, cfg.queries, cfg.k, cfg.seed)

	unboundedEng, err := build(true)
	if err != nil {
		return err
	}
	unboundedRes, unboundedDur, err := run(unboundedEng)
	if err != nil {
		return fmt.Errorf("unbounded run: %w", err)
	}
	boundedEng, err := build(false)
	if err != nil {
		return err
	}
	boundedRes, boundedDur, err := run(boundedEng)
	if err != nil {
		return fmt.Errorf("bounded run: %w", err)
	}

	identical := sameResults(unboundedRes, boundedRes)
	m := boundedEng.Metrics()
	rep := refineReport{
		N:       len(vecs),
		D:       cfg.d,
		DPrime:  dprime,
		Queries: cfg.queries,
		K:       cfg.k,
		Seed:    cfg.seed,

		UnboundedNS: int64(unboundedDur),
		BoundedNS:   int64(boundedDur),
		Speedup:     float64(unboundedDur) / float64(boundedDur),

		ResultsIdentical: identical,

		Refinements:    m.Refinements,
		RefinesAborted: m.RefinesAborted,
		WarmStartHits:  m.WarmStartHits,
	}
	if m.Refinements > 0 {
		rep.AvgRefineRows = float64(m.RefineRows) / float64(m.Refinements)
		rep.AvgRefineCols = float64(m.RefineCols) / float64(m.Refinements)
	}

	fmt.Printf("unbounded: %v  bounded: %v  speedup: %.2fx\n",
		unboundedDur.Round(time.Millisecond), boundedDur.Round(time.Millisecond), rep.Speedup)
	fmt.Printf("results identical: %v\n", identical)
	fmt.Printf("bounded metrics: refinements=%d aborted=%d warm_hits=%d avg_shape=%.1fx%.1f\n",
		rep.Refinements, rep.RefinesAborted, rep.WarmStartHits, rep.AvgRefineRows, rep.AvgRefineCols)

	if cfg.out != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(cfg.out, buf, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", cfg.out)
	}
	if !identical {
		return fmt.Errorf("bounded and unbounded kernels disagree")
	}
	return nil
}

// sameResults reports whether two per-query result sets agree exactly:
// same indices in the same order and bit-identical distances.
func sameResults(a, b [][]emdsearch.Result) bool {
	if len(a) != len(b) {
		return false
	}
	for qi := range a {
		if len(a[qi]) != len(b[qi]) {
			return false
		}
		for i := range a[qi] {
			x, y := a[qi][i], b[qi][i]
			if x.Index != y.Index ||
				math.Float64bits(x.Dist) != math.Float64bits(y.Dist) {
				return false
			}
		}
	}
	return true
}
