package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"emdsearch"
	"emdsearch/internal/data"
)

// chaosHook builds a deterministic fault-injection Options.RefineHook:
// with probability p a refinement panics (exercising the engine's
// panic containment end to end), and with probability 2p it sleeps,
// modeling a pathologically slow solve. Randomness is a splitmix-style
// hash of an atomic counter, so runs are reproducible and the hook is
// safe on concurrent refinement workers. The returned enable flag
// keeps the hook inert until calibration is done.
func chaosHook(p float64) (func(index int), *atomic.Bool) {
	var ctr atomic.Uint64
	var enabled atomic.Bool
	hook := func(index int) {
		if p <= 0 || !enabled.Load() {
			return
		}
		x := ctr.Add(1) * 0x9E3779B97F4A7C15
		x ^= x >> 33
		x *= 0xFF51AFD7ED558CCD
		x ^= x >> 33
		u := float64(x>>11) / float64(1<<53)
		if u < p {
			panic(fmt.Sprintf("chaos: injected solver fault refining item %d", index))
		}
		if u < 3*p {
			time.Sleep(200 * time.Microsecond)
		}
	}
	return hook, &enabled
}

// overloadLevel is one load multiple of the open-loop sweep.
type overloadLevel struct {
	Multiplier float64 `json:"multiplier"`
	OfferedQPS float64 `json:"offered_qps"`
	Submitted  int     `json:"submitted"`
	OK         int     `json:"ok"`
	Degraded   int     `json:"degraded"`
	Shed       int     `json:"shed"`
	Internal   int     `json:"internal"`
	OtherErr   int     `json:"other_err"`
	GoodputQPS float64 `json:"goodput_qps"`
	AdmitP50NS int64   `json:"admitted_p50_ns"`
	AdmitP99NS int64   `json:"admitted_p99_ns"`
	ShedP99NS  int64   `json:"shed_p99_ns"`
	ElapsedNS  int64   `json:"elapsed_ns"`
}

// overloadReport is the JSON artifact of the overload sweep.
type overloadReport struct {
	N             int             `json:"n"`
	D             int             `json:"d"`
	DPrime        int             `json:"dprime"`
	K             int             `json:"k"`
	MaxConcurrent int             `json:"max_concurrent"`
	MaxQueue      int             `json:"max_queue"`
	Chaos         float64         `json:"chaos"`
	BaseMeanNS    int64           `json:"baseline_mean_ns"`
	BaseP99NS     int64           `json:"baseline_p99_ns"`
	CapacityQPS   float64         `json:"capacity_qps"`
	Levels        []overloadLevel `json:"levels"`
	Gate          emdsearch.GateMetrics
}

// runOverload drives a gated engine through an open-loop overload
// sweep: it calibrates uncontended service time, then offers load at
// 1x, 2x, 5x and 10x the estimated capacity with Poisson-free fixed
// spacing (open loop: arrivals never wait for completions, exactly the
// regime that collapses an ungated server), optionally with injected
// solver panics and slow solves (-chaos). Every submitted query is
// accounted to exactly one outcome: full answer, certified degraded
// answer, typed overload shed, contained internal fault, or other
// error. The report shows that goodput stays near capacity and that
// shed queries fail fast while admitted tail latency stays bounded.
func runOverload(cfg serveConfig) error {
	ds, err := data.MusicSpectra(cfg.n+16, cfg.d, cfg.seed)
	if err != nil {
		return err
	}
	vecs, queries, err := ds.Split(16)
	if err != nil {
		return err
	}
	dprime := cfg.d / 8
	if dprime < 2 {
		dprime = 2
	}
	hook, chaosOn := chaosHook(cfg.chaos)
	eng, err := emdsearch.NewEngine(ds.Cost, emdsearch.Options{
		ReducedDims: dprime,
		Workers:     cfg.workers,
		Seed:        cfg.seed,
		RefineHook:  hook,
	})
	if err != nil {
		return err
	}
	for i, h := range vecs {
		if _, err := eng.Add(ds.Items[i].Label, h); err != nil {
			return err
		}
	}
	if err := eng.Build(); err != nil {
		return err
	}
	gate := emdsearch.NewGate(eng, emdsearch.GateOptions{
		MaxConcurrent: cfg.maxConcurrent,
		MaxQueue:      cfg.maxQueue,
		// Under chaos, keep probing the exact path quickly so the sweep
		// exercises open -> half-open -> closed transitions.
		BreakerCooldown: 50 * time.Millisecond,
	})
	const k = 10

	// Calibrate: uncontended serial queries through the gate (chaos
	// off) give the baseline service time and the capacity estimate.
	calN := 50
	if calN > cfg.queries {
		calN = cfg.queries
	}
	calLats := make([]time.Duration, 0, calN)
	for i := 0; i < calN; i++ {
		q := queries[i%len(queries)]
		t0 := time.Now()
		if _, err := gate.KNN(context.Background(), q, k); err != nil {
			return fmt.Errorf("calibration query: %w", err)
		}
		calLats = append(calLats, time.Since(t0))
	}
	sort.Slice(calLats, func(i, j int) bool { return calLats[i] < calLats[j] })
	var calTotal time.Duration
	for _, l := range calLats {
		calTotal += l
	}
	baseMean := calTotal / time.Duration(len(calLats))
	baseP99 := calLats[int(0.99*float64(len(calLats)-1))]
	effConc := cfg.maxConcurrent
	if effConc <= 0 {
		effConc = runtime.GOMAXPROCS(0)
	}
	capacity := float64(effConc) / baseMean.Seconds()
	fmt.Printf("overload: n=%d d=%d d'=%d k=%d maxconcurrent=%d maxqueue=%d chaos=%g\n",
		len(vecs), cfg.d, dprime, k, effConc, cfg.maxQueue, cfg.chaos)
	fmt.Printf("baseline: mean=%v p99=%v -> capacity ~%.0f qps\n",
		baseMean.Round(time.Microsecond), baseP99.Round(time.Microsecond), capacity)

	chaosOn.Store(cfg.chaos > 0)
	report := &overloadReport{
		N: len(vecs), D: cfg.d, DPrime: dprime, K: k,
		MaxConcurrent: effConc, MaxQueue: cfg.maxQueue, Chaos: cfg.chaos,
		BaseMeanNS: int64(baseMean), BaseP99NS: int64(baseP99), CapacityQPS: capacity,
	}

	// Client deadline: generous against the uncontended p99, so only
	// gate pressure (not the baseline spread) degrades or sheds.
	clientDeadline := 20 * baseP99
	if clientDeadline < 10*time.Millisecond {
		clientDeadline = 10 * time.Millisecond
	}

	for _, mult := range []float64{1, 2, 5, 10} {
		rate := capacity * mult
		interval := time.Duration(float64(time.Second) / rate)
		arrivals := cfg.queries
		// Bound each level's wall time: at least enough arrivals to see
		// steady state, at most ~2s of offered load.
		if maxArr := int(2 * rate); arrivals > maxArr && maxArr > 20 {
			arrivals = maxArr
		}
		var (
			wg       sync.WaitGroup
			okN      atomic.Int64
			degrN    atomic.Int64
			shedN    atomic.Int64
			intN     atomic.Int64
			otherN   atomic.Int64
			mu       sync.Mutex
			admitted []time.Duration
			shedLats []time.Duration
		)
		fire := func(a int) {
			q := queries[a%len(queries)]
			wg.Add(1)
			go func() {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(context.Background(), clientDeadline)
				defer cancel()
				t0 := time.Now()
				ans, err := gate.KNN(ctx, q, k)
				lat := time.Since(t0)
				switch {
				case err == nil && ans != nil && !ans.Degraded:
					okN.Add(1)
					mu.Lock()
					admitted = append(admitted, lat)
					mu.Unlock()
				case err == nil && ans != nil && ans.Degraded:
					degrN.Add(1)
					mu.Lock()
					admitted = append(admitted, lat)
					mu.Unlock()
				case errors.Is(err, emdsearch.ErrOverloaded):
					shedN.Add(1)
					mu.Lock()
					shedLats = append(shedLats, lat)
					mu.Unlock()
				case errors.Is(err, emdsearch.ErrInternal):
					intN.Add(1)
				case ans != nil && ans.Degraded:
					// Caller-deadline degradation: certified partial
					// answer with ctx.Err attached. Still goodput-ish,
					// counted as degraded.
					degrN.Add(1)
				default:
					otherN.Add(1)
				}
			}()
		}
		// Open loop against an absolute schedule: arrival a is due at
		// levelStart + a*interval regardless of how the server is doing.
		// When the OS timer overshoots a sub-millisecond sleep, every
		// arrival that became due meanwhile fires as a burst, so the
		// offered rate holds even at intervals below timer granularity.
		levelStart := time.Now()
		for a := 0; a < arrivals; {
			due := int(time.Since(levelStart)/interval) + 1
			if due > arrivals {
				due = arrivals
			}
			for ; a < due; a++ {
				fire(a)
			}
			if a < arrivals {
				if d := time.Until(levelStart.Add(time.Duration(a) * interval)); d > 0 {
					time.Sleep(d)
				}
			}
		}
		wg.Wait()
		elapsed := time.Since(levelStart)

		pct := func(ls []time.Duration, p float64) time.Duration {
			if len(ls) == 0 {
				return 0
			}
			sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
			return ls[int(p*float64(len(ls)-1))]
		}
		lv := overloadLevel{
			Multiplier: mult,
			OfferedQPS: rate,
			Submitted:  arrivals,
			OK:         int(okN.Load()),
			Degraded:   int(degrN.Load()),
			Shed:       int(shedN.Load()),
			Internal:   int(intN.Load()),
			OtherErr:   int(otherN.Load()),
			GoodputQPS: float64(okN.Load()+degrN.Load()) / elapsed.Seconds(),
			AdmitP50NS: int64(pct(admitted, 0.50)),
			AdmitP99NS: int64(pct(admitted, 0.99)),
			ShedP99NS:  int64(pct(shedLats, 0.99)),
			ElapsedNS:  int64(elapsed),
		}
		resolved := lv.OK + lv.Degraded + lv.Shed + lv.Internal + lv.OtherErr
		fmt.Printf("load %4.0fx (%6.0f qps offered): ok=%-5d degraded=%-4d shed=%-5d internal=%-3d other=%-3d goodput=%6.0f qps admit_p50=%v admit_p99=%v shed_p99=%v\n",
			mult, rate, lv.OK, lv.Degraded, lv.Shed, lv.Internal, lv.OtherErr,
			lv.GoodputQPS,
			time.Duration(lv.AdmitP50NS).Round(time.Microsecond),
			time.Duration(lv.AdmitP99NS).Round(time.Microsecond),
			time.Duration(lv.ShedP99NS).Round(time.Microsecond))
		if resolved != arrivals {
			return fmt.Errorf("overload sweep dropped queries: %d submitted, %d resolved", arrivals, resolved)
		}
		report.Levels = append(report.Levels, lv)
	}

	report.Gate = gate.Metrics()
	fmt.Printf("gate: admitted=%d queued=%d shed=%d degraded=%d internal_faults=%d breaker=%s trips=%d est_service=%v\n",
		report.Gate.Admitted, report.Gate.Queued, report.Gate.Shed, report.Gate.Degraded,
		report.Gate.InternalFaults, report.Gate.BreakerState, report.Gate.BreakerTrips,
		report.Gate.EstServiceTime.Round(time.Microsecond))
	m := eng.Metrics()
	fmt.Printf("engine: knn=%d errors=%d degraded=%d panics=%d\n",
		m.KNNQueries, m.QueryErrors, m.QueriesDeadlineDegraded, m.QueryPanics)

	if cfg.out != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.out, blob, 0o644); err != nil {
			return err
		}
		fmt.Printf("report written to %s\n", cfg.out)
	}
	return nil
}
