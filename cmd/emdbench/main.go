// Command emdbench regenerates the paper's evaluation (see DESIGN.md
// section 5 for the experiment index). It runs one or all experiments
// at full or quick scale and prints each result as an aligned ASCII
// table (or CSV).
//
// Usage:
//
//	emdbench [-exp all|fig13..fig25|tab1..tab3|serve|refine|filter|persist|index|cascade|shard] [-scale full|medium|quick] [-csv] [-seed N]
//	         [-dprime D] [-workers N] [-concurrency N] [-timeout D] [-wal FILE] [-out FILE]
//
// The full scale approximates the paper's corpus sizes and can take
// tens of minutes for the complete suite; quick finishes in a couple
// of minutes.
//
// -exp serve runs the concurrent-serving benchmark instead of a paper
// experiment: concurrent client goroutines (-concurrency) fire k-NN
// queries, each refined by a per-query worker pool (-workers), while a
// background writer keeps mutating the index. It reports throughput,
// tail latency (p50/p95/p99) and the engine's aggregated Metrics. With
// -timeout every query gets a deadline through KNNCtx: queries that
// miss it return certified anytime answers instead of stretching the
// tail, and the report counts how many degraded.
//
// -exp refine benchmarks the threshold-aware exact refinement kernel
// against the legacy unbounded one on an identical k-NN workload,
// verifies the answers are bit-identical, and (with -out) writes a
// JSON report with the speedup and refinement counters.
//
// -exp filter benchmarks the first filter stage across storage
// layouts — the per-item reference scan, the columnar SoA Red-IM
// kernel, and the int16-quantized tangent kernel — over a block-size
// sweep, verifies the k-NN answers stay bit-identical, and (with
// -out) writes a JSON report with per-layout throughput and speedups.
//
// -exp index benchmarks the metric-index candidate generator: the
// default scan pipeline versus the M-tree and VP-tree first stages
// over the same corpora, across corpus sizes and k. It verifies the
// answers stay bit-identical to the scan baseline, checks nodes
// expanded per query grow sublinearly in n, and (with -out) writes a
// JSON report with the end-to-end speedups.
//
// -exp cascade benchmarks the auto-tuning cascade planner: a fixed
// 2-level reduction chain versus an AutoCascade engine that observes
// the workload and re-plans its own stepwise-d' pyramid. It verifies
// the answers stay bit-identical across plans, reports exact
// refinements per query and the end-to-end speedup, and (with -out)
// writes a JSON report.
//
// -exp shard benchmarks fault-tolerant scatter-gather serving: one
// fixed corpus queried through ShardSets of increasing width, every
// healthy answer verified bit-identical to the single-engine
// reference, then re-queried with one shard hard-failing to measure
// certified partial answers. With -out it writes a JSON report.
//
// -exp persist benchmarks the durability layer: atomic snapshot
// save/load, fsynced write-ahead-log append throughput, checkpoint
// latency and crash recovery (snapshot load + log replay), verifying
// the recovered engine against the live one. With -out it writes a
// JSON report.
//
// -wal gives the serve benchmark a write-ahead log: the background
// writer's Adds then pay a durable (fsynced) log append each, the way
// a crash-safe ingest would. If the log latches broken mid-run the
// writer heals it with Engine.ReopenWAL under capped exponential
// backoff instead of dying.
//
// -gate routes serve-mode queries through an admission Gate
// (bounded concurrency, bounded deadline-aware wait queue, load
// shedding, panic breaker); -maxconcurrent and -maxqueue size it.
//
// -overload replaces the closed-loop benchmark with an open-loop
// overload sweep: after calibrating the uncontended service time it
// offers 1x, 2x, 5x and 10x the estimated capacity and reports, per
// level, the outcome split (ok / certified-degraded / shed / internal
// fault), goodput, admitted p50/p99 and shed p99. -chaos P injects a
// solver panic with probability P per refinement (and a slow solve
// with probability 2P), proving panic containment and the breaker
// under load. With -out the sweep writes a JSON report.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"emdsearch/internal/eval"
)

func main() {
	var (
		expFlag   = flag.String("exp", "all", "experiment id (fig13..fig25, tab1..tab3) or 'all'")
		scaleFlag = flag.String("scale", "quick", "experiment scale: full, medium or quick")
		csvFlag   = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		seedFlag  = flag.Int64("seed", 0, "override the experiment seed (0 keeps the default)")
		dprime    = flag.Int("dprime", 0, "override the chain d' used by the pipeline experiments (0 keeps the scale default)")
		recall    = flag.Bool("check-recall", false, "verify every pipeline result against an exhaustive scan (slow)")
		workers   = flag.Int("workers", 1, "serve mode: refinement workers per query (negative = GOMAXPROCS)")
		conc      = flag.Int("concurrency", 4, "serve mode: concurrent query clients")
		timeout   = flag.Duration("timeout", 0, "serve mode: per-query deadline, e.g. 500us or 2ms (0 = no deadline)")
		walFlag   = flag.String("wal", "", "serve mode: write-ahead-log path; background ingest pays a fsynced append per Add")
		outFlag   = flag.String("out", "", "refine/persist/serve mode: write the JSON report to this path")
		gateFlag  = flag.Bool("gate", false, "serve mode: route queries through an admission Gate (limiter + breaker)")
		overload  = flag.Bool("overload", false, "serve mode: run the open-loop overload sweep (1x/2x/5x/10x capacity) instead of the closed-loop benchmark")
		chaos     = flag.Float64("chaos", 0, "serve mode: per-refinement probability of an injected solver panic (and 2x of a slow solve)")
		maxConc   = flag.Int("maxconcurrent", 0, "serve mode: gate concurrency limit (0 = GOMAXPROCS)")
		maxQueue  = flag.Int("maxqueue", 0, "serve mode: gate wait-queue bound (0 = 2x maxconcurrent)")
	)
	flag.Parse()

	if *expFlag == "shard" {
		sc := shardConfig{n: 300, d: 32, queries: 20, k: 10, shards: []int{1, 2, 4}, seed: *seedFlag, out: *outFlag}
		if sc.seed == 0 {
			sc.seed = 42
		}
		switch *scaleFlag {
		case "full":
			sc.n, sc.d, sc.shards = 2000, 64, []int{1, 2, 4, 8}
		case "medium":
			sc.n, sc.d = 800, 48
		case "quick":
		default:
			fmt.Fprintf(os.Stderr, "emdbench: unknown scale %q (want full, medium or quick)\n", *scaleFlag)
			os.Exit(2)
		}
		if err := runShard(sc); err != nil {
			fmt.Fprintf(os.Stderr, "emdbench: shard: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *expFlag == "persist" {
		pc := persistConfig{n: 300, d: 32, seed: *seedFlag, out: *outFlag}
		switch *scaleFlag {
		case "full":
			pc.n, pc.d = 2000, 96
		case "medium":
			pc.n, pc.d = 800, 64
		case "quick":
		default:
			fmt.Fprintf(os.Stderr, "emdbench: unknown scale %q (want full, medium or quick)\n", *scaleFlag)
			os.Exit(2)
		}
		if err := runPersist(pc); err != nil {
			fmt.Fprintf(os.Stderr, "emdbench: persist: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *expFlag == "index" {
		// Two smooth mixture modes keep the intrinsic dimensionality low
		// — the regime a metric index is for. High-intrinsic-dim corpora
		// stay on the scan path (that is what IndexAuto checks).
		ic := indexConfig{
			scales: []int{2000, 10000}, d: 32, modes: 2,
			queries: 20, ks: []int{1, 10},
			seed: *seedFlag, out: *outFlag,
		}
		switch *scaleFlag {
		case "full":
			ic.scales = []int{10000, 100000}
			ic.queries = 40
		case "medium":
			ic.scales = []int{5000, 20000}
			ic.queries = 30
		case "quick":
		default:
			fmt.Fprintf(os.Stderr, "emdbench: unknown scale %q (want full, medium or quick)\n", *scaleFlag)
			os.Exit(2)
		}
		if err := runIndex(ic); err != nil {
			fmt.Fprintf(os.Stderr, "emdbench: index: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *expFlag == "cascade" {
		// A deliberately loose default d' (d/4) gives the planner head
		// room: the fixed 2-level chain over-refines, the auto planner
		// may grow a finer finest level to prune harder.
		cc := cascadeConfig{
			scales: []int{2000, 10000}, d: 64, modes: 4,
			queries: 20, k: 10,
			seed: *seedFlag, out: *outFlag,
		}
		switch *scaleFlag {
		case "full":
			cc.scales = []int{10000, 100000}
			cc.queries = 40
		case "medium":
			cc.scales = []int{5000, 20000}
			cc.queries = 30
		case "quick":
		default:
			fmt.Fprintf(os.Stderr, "emdbench: unknown scale %q (want full, medium or quick)\n", *scaleFlag)
			os.Exit(2)
		}
		if err := runCascade(cc); err != nil {
			fmt.Fprintf(os.Stderr, "emdbench: cascade: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *expFlag == "filter" {
		fc := filterConfig{n: 1000, d: 32, queries: 200, k: 10, seed: *seedFlag, out: *outFlag}
		switch *scaleFlag {
		case "full":
			fc.n, fc.queries = 8000, 500
		case "medium":
			fc.n, fc.queries = 3000, 300
		case "quick":
		default:
			fmt.Fprintf(os.Stderr, "emdbench: unknown scale %q (want full, medium or quick)\n", *scaleFlag)
			os.Exit(2)
		}
		if err := runFilter(fc); err != nil {
			fmt.Fprintf(os.Stderr, "emdbench: filter: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *expFlag == "refine" {
		rc := refineConfig{n: 300, d: 32, queries: 200, k: 10, seed: *seedFlag, out: *outFlag}
		switch *scaleFlag {
		case "full":
			rc.n, rc.d, rc.queries = 2000, 96, 1000
		case "medium":
			rc.n, rc.d, rc.queries = 800, 64, 400
		case "quick":
		default:
			fmt.Fprintf(os.Stderr, "emdbench: unknown scale %q (want full, medium or quick)\n", *scaleFlag)
			os.Exit(2)
		}
		if err := runRefine(rc); err != nil {
			fmt.Fprintf(os.Stderr, "emdbench: refine: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *expFlag == "serve" {
		if *conc < 1 {
			fmt.Fprintf(os.Stderr, "emdbench: -concurrency must be at least 1 (got %d)\n", *conc)
			os.Exit(2)
		}
		sc := serveConfig{
			n: 300, d: 32, queries: 200,
			workers: *workers, concurrency: *conc, seed: *seedFlag,
			timeout: *timeout, wal: *walFlag,
			gate: *gateFlag, overload: *overload, chaos: *chaos,
			maxConcurrent: *maxConc, maxQueue: *maxQueue, out: *outFlag,
		}
		switch *scaleFlag {
		case "full":
			sc.n, sc.d, sc.queries = 2000, 96, 1000
		case "medium":
			sc.n, sc.d, sc.queries = 800, 64, 400
		case "quick":
		default:
			fmt.Fprintf(os.Stderr, "emdbench: unknown scale %q (want full, medium or quick)\n", *scaleFlag)
			os.Exit(2)
		}
		run := runServe
		if sc.overload {
			run = runOverload
		}
		if err := run(sc); err != nil {
			fmt.Fprintf(os.Stderr, "emdbench: serve: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var cfg eval.Config
	switch *scaleFlag {
	case "full":
		cfg = eval.FullConfig()
	case "medium":
		cfg = eval.MediumConfig()
	case "quick":
		cfg = eval.QuickConfig()
	default:
		fmt.Fprintf(os.Stderr, "emdbench: unknown scale %q (want full, medium or quick)\n", *scaleFlag)
		os.Exit(2)
	}
	if *seedFlag != 0 {
		cfg.Seed = *seedFlag
	}
	if *dprime != 0 {
		cfg.ChainDPrime = *dprime
	}
	if *recall {
		cfg.CheckRecall = true
	}

	ran := 0
	for _, exp := range eval.Experiments() {
		if *expFlag != "all" && exp.ID != *expFlag {
			continue
		}
		ran++
		start := time.Now()
		table, err := exp.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "emdbench: %s: %v\n", exp.ID, err)
			os.Exit(1)
		}
		if *csvFlag {
			fmt.Printf("# %s\n%s\n", table.Title, table.CSV())
		} else {
			fmt.Println(table.String())
		}
		fmt.Printf("(%s finished in %v)\n\n", exp.ID, time.Since(start).Round(time.Millisecond))
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "emdbench: unknown experiment %q\n", *expFlag)
		os.Exit(2)
	}
}
