package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"emdsearch"
	"emdsearch/internal/data"
)

// cascadeConfig sizes the cascade-planner benchmark.
type cascadeConfig struct {
	scales  []int // corpus sizes, ascending
	d       int
	modes   int
	queries int
	k       int
	seed    int64
	out     string // JSON report path ("" = stdout only)
}

// cascadeRun is one measured (engine mode, corpus size) cell.
type cascadeRun struct {
	Mode string `json:"mode"` // fixed | auto
	N    int    `json:"n"`
	Plan []int  `json:"plan"` // active chain d' levels, coarse -> fine

	QueryNS int64   `json:"query_ns"` // summed end-to-end KNN wall time
	QPS     float64 `json:"queries_per_sec"`

	// RefinementsPerQuery is the mean number of exact EMD solves per
	// query — the quantity the planner exists to shrink.
	RefinementsPerQuery float64 `json:"refinements_per_query"`

	SpeedupVsFixed   float64 `json:"speedup_vs_fixed"`
	ResultsIdentical bool    `json:"results_identical"`
}

// cascadeReport is the machine-readable result of -exp cascade,
// written to -out as JSON (the CI benchmark smoke job archives it as
// BENCH_cascade.json).
type cascadeReport struct {
	D       int   `json:"d"`
	DPrime  int   `json:"dprime"`
	Modes   int   `json:"modes"`
	Queries int   `json:"queries"`
	K       int   `json:"k"`
	Scales  []int `json:"scales"`
	Seed    int64 `json:"seed"`

	Runs []cascadeRun `json:"runs"`

	// RefinementsReduced reports whether, at the largest scale, the
	// auto-planned chain performed fewer exact refinements per query
	// than the fixed 2-level chain — the acceptance signal.
	RefinementsReduced bool `json:"refinements_reduced"`
	// Speedup is the end-to-end auto-vs-fixed speedup at the largest
	// scale.
	Speedup          float64 `json:"speedup"`
	ResultsIdentical bool    `json:"results_identical"`
}

// runCascade benchmarks the auto-tuning cascade planner end to end: a
// fixed 2-level chain (the configured d' over a coarse d'=2 pre-level)
// versus an AutoCascade engine that observes one pass of the workload
// and re-plans its own pyramid. Answers must stay bit-identical across
// plans — the cascade is a chain of certified lower bounds, never an
// approximation — so any divergence fails the run. The headline signal
// is exact refinements per query falling under the planned chain.
func runCascade(cfg cascadeConfig) error {
	maxN := cfg.scales[len(cfg.scales)-1]
	ds, err := data.GaussianMixtures(maxN+cfg.queries, cfg.d, cfg.modes, cfg.seed)
	if err != nil {
		return err
	}
	vecs, queries, err := ds.Split(cfg.queries)
	if err != nil {
		return err
	}
	// d' = d/4: a deliberately loose finest level. The fixed chain is
	// stuck refining every histogram this bound cannot prune; the
	// planner is free to grow a finer finest level when the model says
	// the extra filter work pays for itself in saved refinements.
	dprime := cfg.d / 4
	if dprime < 2 {
		dprime = 2
	}

	build := func(n int, auto bool) (*emdsearch.Engine, error) {
		opts := emdsearch.Options{
			SampleSize: 24,
			Seed:       cfg.seed,
			IndexKind:  emdsearch.IndexOff,
		}
		if auto {
			opts.ReducedDims = dprime
			opts.AutoCascade = true
		} else {
			opts.Hierarchy = []int{dprime, 2}
		}
		eng, err := emdsearch.NewEngine(ds.Cost, opts)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			if _, err := eng.Add(ds.Items[i].Label, vecs[i]); err != nil {
				return nil, err
			}
		}
		if err := eng.Build(); err != nil {
			return nil, err
		}
		return eng, nil
	}

	measure := func(eng *emdsearch.Engine, mode string, n int) ([][]emdsearch.Result, *cascadeRun, error) {
		before := eng.Metrics()
		results := make([][]emdsearch.Result, 0, len(queries))
		start := time.Now()
		for _, q := range queries {
			res, _, err := eng.KNN(q, cfg.k)
			if err != nil {
				return nil, nil, err
			}
			results = append(results, res)
		}
		elapsed := time.Since(start)
		after := eng.Metrics()
		r := &cascadeRun{
			Mode:                mode,
			N:                   n,
			QueryNS:             int64(elapsed),
			QPS:                 float64(len(queries)) / elapsed.Seconds(),
			RefinementsPerQuery: float64(after.Refinements-before.Refinements) / float64(len(queries)),
		}
		return results, r, nil
	}

	fmt.Printf("cascade: d=%d d'=%d modes=%d queries=%d k=%d scales=%v seed=%d\n",
		cfg.d, dprime, cfg.modes, cfg.queries, cfg.k, cfg.scales, cfg.seed)

	rep := cascadeReport{
		D: cfg.d, DPrime: dprime, Modes: cfg.modes,
		Queries: cfg.queries, K: cfg.k, Scales: cfg.scales, Seed: cfg.seed,
		ResultsIdentical: true,
	}

	for _, n := range cfg.scales {
		fixedEng, err := build(n, false)
		if err != nil {
			return fmt.Errorf("fixed build n=%d: %w", n, err)
		}
		fixedRes, fixedRun, err := measure(fixedEng, "fixed", n)
		if err != nil {
			return fmt.Errorf("fixed run n=%d: %w", n, err)
		}
		fixedRun.Plan = []int{2, dprime}
		fixedRun.ResultsIdentical = true
		rep.Runs = append(rep.Runs, *fixedRun)
		fmt.Printf("%-6s n=%-7d plan=%-12v %9.1f q/s  refines/q=%8.1f\n",
			fixedRun.Mode, n, fixedRun.Plan, fixedRun.QPS, fixedRun.RefinementsPerQuery)

		autoEng, err := build(n, true)
		if err != nil {
			return fmt.Errorf("auto build n=%d: %w", n, err)
		}
		// One observation pass over the real workload feeds the cost
		// model; the forced Replan then adopts the cheapest chain the
		// fitted model can find (a no-op if the single level already is).
		for _, q := range queries {
			if _, _, err := autoEng.KNN(q, cfg.k); err != nil {
				return fmt.Errorf("auto warmup n=%d: %w", n, err)
			}
		}
		if _, err := autoEng.Replan(); err != nil {
			return fmt.Errorf("auto replan n=%d: %w", n, err)
		}
		autoRes, autoRun, err := measure(autoEng, "auto", n)
		if err != nil {
			return fmt.Errorf("auto run n=%d: %w", n, err)
		}
		autoRun.Plan = autoEng.CascadePlan()
		autoRun.SpeedupVsFixed = float64(fixedRun.QueryNS) / float64(autoRun.QueryNS)
		autoRun.ResultsIdentical = sameResults(fixedRes, autoRes)
		if !autoRun.ResultsIdentical {
			rep.ResultsIdentical = false
		}
		if n == maxN {
			rep.Speedup = autoRun.SpeedupVsFixed
			rep.RefinementsReduced = autoRun.ResultsIdentical &&
				autoRun.RefinementsPerQuery < fixedRun.RefinementsPerQuery
		}
		rep.Runs = append(rep.Runs, *autoRun)
		fmt.Printf("%-6s n=%-7d plan=%-12v %9.1f q/s  refines/q=%8.1f  %6.2fx  identical=%v\n",
			autoRun.Mode, n, autoRun.Plan, autoRun.QPS, autoRun.RefinementsPerQuery,
			autoRun.SpeedupVsFixed, autoRun.ResultsIdentical)
	}

	fmt.Printf("results identical: %v  refinements reduced at n=%d: %v  speedup: %.2fx\n",
		rep.ResultsIdentical, maxN, rep.RefinementsReduced, rep.Speedup)

	if cfg.out != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(cfg.out, buf, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", cfg.out)
	}
	if !rep.ResultsIdentical {
		return fmt.Errorf("the auto-planned chain diverged from the fixed chain")
	}
	return nil
}
