package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"emdsearch"
	"emdsearch/internal/data"
)

// indexConfig sizes the metric-index benchmark.
type indexConfig struct {
	scales  []int // corpus sizes, ascending
	d       int
	modes   int
	queries int
	ks      []int
	seed    int64
	out     string // JSON report path ("" = stdout only)
}

// indexRun is one measured (engine kind, corpus size, k) cell.
type indexRun struct {
	Kind string `json:"kind"` // scan | mtree | vptree
	N    int    `json:"n"`
	K    int    `json:"k"`

	// BuildMS is the one-off snapshot-build cost paid at the first
	// query — for the index kinds that includes constructing the tree.
	BuildMS float64 `json:"build_ms"`
	QueryNS int64   `json:"query_ns"` // summed end-to-end KNN wall time
	QPS     float64 `json:"queries_per_sec"`

	// NodesPerQuery is the mean index nodes expanded per query (0 for
	// the scan baseline); NodesFrac divides by n — sublinear candidate
	// generation shows as this fraction falling while n grows.
	NodesPerQuery float64 `json:"nodes_per_query"`
	NodesFrac     float64 `json:"nodes_frac"`

	SpeedupVsScan    float64 `json:"speedup_vs_scan"`
	ResultsIdentical bool    `json:"results_identical"`
}

// indexReport is the machine-readable result of -exp index, written to
// -out as JSON (the CI benchmark smoke job archives it as
// BENCH_index.json).
type indexReport struct {
	D       int     `json:"d"`
	DPrime  int     `json:"dprime"`
	Modes   int     `json:"modes"`
	Queries int     `json:"queries"`
	Scales  []int   `json:"scales"`
	Ks      []int   `json:"ks"`
	Seed    int64   `json:"seed"`
	Runs    []indexRun `json:"runs"`

	// BestSpeedup is the largest end-to-end index speedup at the
	// largest scale and default k; the acceptance target is
	// SpeedupTarget.
	BestSpeedup   float64 `json:"best_speedup"`
	SpeedupTarget float64 `json:"speedup_target"`

	// SublinearNodes reports whether, for each index kind at the
	// default k, nodes expanded per query grew strictly slower than the
	// corpus between the smallest and largest scale.
	SublinearNodes   bool `json:"sublinear_nodes"`
	ResultsIdentical bool `json:"results_identical"`
}

// indexSpeedupTarget is the acceptance bar for index-backed k-NN over
// the full scan pipeline at the largest benchmarked scale.
const indexSpeedupTarget = 3.0

// indexDefaultK is the k the headline speedup and sublinearity checks
// are evaluated at.
const indexDefaultK = 10

// runIndex benchmarks the metric-index candidate generator end to end:
// the default scan pipeline versus the M-tree and VP-tree first stages
// over the same corpora, across corpus sizes and k. Answers must stay
// bit-identical to the scan baseline — the index is a candidate
// *generator*, never an approximation — so any divergence fails the
// run. The sublinearity signal is nodes expanded per query growing
// slower than n.
func runIndex(cfg indexConfig) error {
	maxN := cfg.scales[len(cfg.scales)-1]
	ds, err := data.GaussianMixtures(maxN+cfg.queries, cfg.d, cfg.modes, cfg.seed)
	if err != nil {
		return err
	}
	vecs, queries, err := ds.Split(cfg.queries)
	if err != nil {
		return err
	}
	// d' = d/2: the tight reduction. The index pays Red-EMD per visited
	// entry, so it profits from a bound that prunes hard; the scan's
	// cheap quantized pre-stage cannot exploit tightness the same way.
	dprime := cfg.d / 2
	if dprime < 2 {
		dprime = 2
	}

	build := func(n int, kind string) (*emdsearch.Engine, float64, error) {
		opts := emdsearch.Options{
			ReducedDims: dprime,
			SampleSize:  24,
			Seed:        cfg.seed,
			IndexKind:   kind,
		}
		eng, err := emdsearch.NewEngine(ds.Cost, opts)
		if err != nil {
			return nil, 0, err
		}
		for i := 0; i < n; i++ {
			if _, err := eng.Add(ds.Items[i].Label, vecs[i]); err != nil {
				return nil, 0, err
			}
		}
		if err := eng.Build(); err != nil {
			return nil, 0, err
		}
		// The snapshot (and, for the index kinds, the tree) is built
		// lazily at the first query — time it as the build cost.
		start := time.Now()
		if _, _, err := eng.KNN(queries[0], indexDefaultK); err != nil {
			return nil, 0, err
		}
		return eng, float64(time.Since(start)) / float64(time.Millisecond), nil
	}

	run := func(eng *emdsearch.Engine, k int, wantIndex bool) ([][]emdsearch.Result, *indexRun, error) {
		results := make([][]emdsearch.Result, 0, cfg.queries)
		var nodes int64
		start := time.Now()
		for _, q := range queries {
			res, stats, err := eng.KNN(q, k)
			if err != nil {
				return nil, nil, err
			}
			if stats.IndexUsed != wantIndex {
				return nil, nil, fmt.Errorf("IndexUsed = %v, want %v", stats.IndexUsed, wantIndex)
			}
			nodes += int64(stats.IndexNodesVisited)
			results = append(results, res)
		}
		elapsed := time.Since(start)
		r := &indexRun{
			K:             k,
			QueryNS:       int64(elapsed),
			QPS:           float64(len(queries)) / elapsed.Seconds(),
			NodesPerQuery: float64(nodes) / float64(len(queries)),
		}
		return results, r, nil
	}

	fmt.Printf("index: d=%d d'=%d modes=%d queries=%d scales=%v ks=%v seed=%d\n",
		cfg.d, dprime, cfg.modes, cfg.queries, cfg.scales, cfg.ks, cfg.seed)

	rep := indexReport{
		D: cfg.d, DPrime: dprime, Modes: cfg.modes,
		Queries: cfg.queries, Scales: cfg.scales, Ks: cfg.ks, Seed: cfg.seed,
		SpeedupTarget:    indexSpeedupTarget,
		SublinearNodes:   true,
		ResultsIdentical: true,
	}
	// nodesAt[kind][n] at the default k, for the sublinearity check.
	nodesAt := map[string]map[int]float64{"mtree": {}, "vptree": {}}

	for _, n := range cfg.scales {
		scanEng, scanBuild, err := build(n, emdsearch.IndexOff)
		if err != nil {
			return fmt.Errorf("scan build n=%d: %w", n, err)
		}
		type variant struct {
			name string
			eng  *emdsearch.Engine
			ms   float64
		}
		variants := []variant{{"scan", scanEng, scanBuild}}
		for _, kind := range []string{emdsearch.IndexMTree, emdsearch.IndexVPTree} {
			eng, ms, err := build(n, kind)
			if err != nil {
				return fmt.Errorf("%s build n=%d: %w", kind, n, err)
			}
			variants = append(variants, variant{kind, eng, ms})
		}
		for _, k := range cfg.ks {
			var scanRes [][]emdsearch.Result
			var scanNS int64
			for _, v := range variants {
				out, r, err := run(v.eng, k, v.name != "scan")
				if err != nil {
					return fmt.Errorf("%s run n=%d k=%d: %w", v.name, n, k, err)
				}
				r.Kind, r.N, r.BuildMS = v.name, n, v.ms
				r.ResultsIdentical = true
				if v.name == "scan" {
					scanRes, scanNS = out, r.QueryNS
				} else {
					r.SpeedupVsScan = float64(scanNS) / float64(r.QueryNS)
					r.NodesFrac = r.NodesPerQuery / float64(n)
					r.ResultsIdentical = sameResults(scanRes, out)
					if !r.ResultsIdentical {
						rep.ResultsIdentical = false
					}
					if k == indexDefaultK {
						nodesAt[v.name][n] = r.NodesPerQuery
						if n == maxN && r.ResultsIdentical && r.SpeedupVsScan > rep.BestSpeedup {
							rep.BestSpeedup = r.SpeedupVsScan
						}
					}
				}
				rep.Runs = append(rep.Runs, *r)
				fmt.Printf("%-8s n=%-7d k=%-3d build=%8.1fms  %9.1f q/s  nodes/q=%9.1f (%5.3f of n)  %6.2fx  identical=%v\n",
					r.Kind, n, k, r.BuildMS, r.QPS, r.NodesPerQuery, r.NodesFrac, r.SpeedupVsScan, r.ResultsIdentical)
			}
		}
	}

	// Sublinearity: nodes/query must grow strictly slower than the
	// corpus between the smallest and largest scale.
	if len(cfg.scales) >= 2 {
		minN := cfg.scales[0]
		growth := float64(maxN) / float64(minN)
		for kind, at := range nodesAt {
			lo, hi := at[minN], at[maxN]
			if lo <= 0 || hi <= 0 {
				continue
			}
			ratio := hi / lo
			ok := ratio < growth
			if !ok {
				rep.SublinearNodes = false
			}
			fmt.Printf("%-8s nodes grew %.2fx while n grew %.2fx — sublinear=%v\n", kind, ratio, growth, ok)
		}
	}

	fmt.Printf("results identical: %v  best index speedup at n=%d k=%d: %.2fx (target %.1fx)\n",
		rep.ResultsIdentical, maxN, indexDefaultK, rep.BestSpeedup, rep.SpeedupTarget)

	if cfg.out != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(cfg.out, buf, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", cfg.out)
	}
	if !rep.ResultsIdentical {
		return fmt.Errorf("an index kind diverged from the scan baseline")
	}
	return nil
}
