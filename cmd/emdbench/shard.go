package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"sort"
	"time"

	"emdsearch"
	"emdsearch/internal/data"
)

// shardConfig sizes the scatter-gather serving benchmark.
type shardConfig struct {
	n, d    int
	queries int
	k       int
	shards  []int
	seed    int64
	out     string // JSON report path ("" = stdout only)
}

// shardRun is one shard-count's measurement inside -exp shard.
type shardRun struct {
	Shards int `json:"shards"`
	// Healthy-path serving: every query's answer verified bit-identical
	// to the single merged engine before any number is reported.
	HealthyQPS    float64 `json:"healthy_qps"`
	HealthyP95NS  int64   `json:"healthy_p95_ns"`
	Refinements   int     `json:"refinements"`
	IdentityCheck bool    `json:"identity_check"`
	// Chaos leg: shard 0 fails every dispatch; answers must degrade
	// with exact coverage instead of failing.
	ChaosQPS      float64 `json:"chaos_qps"`
	ChaosDegraded int     `json:"chaos_degraded"`
	// Replicated leg: one follower per shard, shard 0's primary dead.
	// Failover serves the full answer — verified bit-identical to the
	// single engine (hard assertion) with zero uncovered items.
	FailoverQPS     float64 `json:"failover_qps"`
	FailoverServes  int64   `json:"failover_serves"`
	ReplicaIdentity bool    `json:"replica_identity"`
}

// shardReport is the machine-readable result of -exp shard, written
// to -out as JSON (the CI benchmark smoke job archives it as
// BENCH_shard.json).
type shardReport struct {
	N       int        `json:"n"`
	D       int        `json:"d"`
	Queries int        `json:"queries"`
	K       int        `json:"k"`
	Seed    int64      `json:"seed"`
	Runs    []shardRun `json:"runs"`
}

// runShard benchmarks fault-tolerant scatter-gather serving: one fixed
// corpus queried through shard sets of increasing width, with every
// healthy answer verified bit-identical to the single-engine reference
// (results and ordering), then re-queried with one shard failing to
// measure the cost and coverage of certified partial answers.
func runShard(cfg shardConfig) error {
	ds, err := data.MusicSpectra(cfg.n+cfg.queries, cfg.d, cfg.seed)
	if err != nil {
		return err
	}
	vecs, queries, err := ds.Split(cfg.queries)
	if err != nil {
		return err
	}
	dprime := cfg.d / 4
	if dprime < 2 {
		dprime = 2
	}
	engOpts := emdsearch.Options{ReducedDims: dprime, Seed: cfg.seed}

	single, err := emdsearch.NewEngine(ds.Cost, engOpts)
	if err != nil {
		return err
	}
	for i, h := range vecs {
		if _, err := single.Add(ds.Items[i].Label, h); err != nil {
			return err
		}
	}
	if err := single.Build(); err != nil {
		return err
	}
	reference := make([][]emdsearch.Result, len(queries))
	for qi, q := range queries {
		res, _, err := single.KNN(q, cfg.k)
		if err != nil {
			return err
		}
		reference[qi] = res
	}

	report := shardReport{N: cfg.n, D: cfg.d, Queries: cfg.queries, K: cfg.k, Seed: cfg.seed}
	ctx := context.Background()
	for _, shards := range cfg.shards {
		set, err := buildShardBench(ds.Cost, engOpts, vecs, ds, shards, nil)
		if err != nil {
			return err
		}
		run := shardRun{Shards: shards, IdentityCheck: true}
		lat := make([]time.Duration, 0, len(queries))
		start := time.Now()
		for qi, q := range queries {
			qs := time.Now()
			ans, err := set.KNN(ctx, q, cfg.k)
			if err != nil {
				return fmt.Errorf("shards=%d query %d: %w", shards, qi, err)
			}
			lat = append(lat, time.Since(qs))
			if ans.Degraded {
				return fmt.Errorf("shards=%d query %d degraded on the healthy path", shards, qi)
			}
			run.Refinements += ans.Stats.Refinements
			if !sameShardResults(ans.Results, reference[qi]) {
				return fmt.Errorf("shards=%d query %d: scatter-gather answer diverged from single engine\n got: %v\nwant: %v",
					shards, qi, ans.Results, reference[qi])
			}
		}
		total := time.Since(start)
		run.HealthyQPS = float64(len(queries)) / total.Seconds()
		run.HealthyP95NS = percentileNS(lat, 0.95)

		// Chaos leg: shard 0 hard-fails; every answer must degrade with
		// the failed shard's items accounted uncovered.
		chaos, err := buildShardBench(ds.Cost, engOpts, vecs, ds, shards,
			func(ctx context.Context, shard, try int, op string) error {
				if shard == 0 && shards > 1 {
					return errors.New("bench: injected shard outage")
				}
				return nil
			})
		if err != nil {
			return err
		}
		start = time.Now()
		for qi, q := range queries {
			ans, err := chaos.KNN(ctx, q, cfg.k)
			if shards == 1 {
				if err != nil {
					return err
				}
				continue
			}
			if err != nil {
				return fmt.Errorf("shards=%d chaos query %d failed outright: %w", shards, qi, err)
			}
			if !ans.Degraded || ans.Coverage.ShardsFailed != 1 || ans.Coverage.ItemsUncovered == 0 {
				return fmt.Errorf("shards=%d chaos query %d: coverage %+v", shards, qi, ans.Coverage)
			}
			run.ChaosDegraded++
		}
		run.ChaosQPS = float64(len(queries)) / time.Since(start).Seconds()

		// Replicated leg: same dead primary, but each shard has a
		// caught-up follower — the failover answer must be complete and
		// bit-identical to the single-engine reference.
		repl, err := buildReplicatedBench(ds.Cost, engOpts, vecs, ds, shards,
			func(ctx context.Context, shard, try int, op string) error {
				if shard == 0 && shards > 1 && op == "knn" {
					return errors.New("bench: injected primary crash")
				}
				return nil
			})
		if err != nil {
			return err
		}
		run.ReplicaIdentity = true
		start = time.Now()
		for qi, q := range queries {
			ans, err := repl.KNN(ctx, q, cfg.k)
			if err != nil {
				return fmt.Errorf("shards=%d failover query %d: %w", shards, qi, err)
			}
			if shards > 1 {
				if ans.Degraded || ans.Coverage.ItemsUncovered != 0 {
					return fmt.Errorf("shards=%d failover query %d: caught-up failover degraded: %+v", shards, qi, ans.Coverage)
				}
				if !ans.Outcomes[0].FailedOver {
					return fmt.Errorf("shards=%d failover query %d: shard 0 did not fail over: %+v", shards, qi, ans.Outcomes[0])
				}
			}
			if !sameShardResults(ans.Results, reference[qi]) {
				return fmt.Errorf("shards=%d failover query %d: failed-over answer diverged from single engine\n got: %v\nwant: %v",
					shards, qi, ans.Results, reference[qi])
			}
		}
		run.FailoverQPS = float64(len(queries)) / time.Since(start).Seconds()
		run.FailoverServes = repl.Metrics().FailoverServes
		repl.Close()
		report.Runs = append(report.Runs, run)

		fmt.Printf("shards=%d  healthy %.0f q/s (p95 %v, %d refinements)  chaos %.0f q/s (%d/%d degraded)  failover %.0f q/s (%d serves, identity ok)\n",
			shards, run.HealthyQPS, time.Duration(run.HealthyP95NS), run.Refinements,
			run.ChaosQPS, run.ChaosDegraded, len(queries), run.FailoverQPS, run.FailoverServes)
	}

	if cfg.out != "" {
		b, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.out, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", cfg.out)
	}
	return nil
}

// buildShardBench loads the corpus into a fresh shard set.
func buildShardBench(cost emdsearch.CostMatrix, engOpts emdsearch.Options, vecs []emdsearch.Histogram, ds *data.Dataset, shards int, hook func(ctx context.Context, shard, try int, op string) error) (*emdsearch.ShardSet, error) {
	set, err := emdsearch.NewShardSet(cost, engOpts, emdsearch.ShardSetOptions{
		Shards: shards, ShardHook: hook, QuarantineAfter: 1 << 30,
	})
	if err != nil {
		return nil, err
	}
	for i, h := range vecs {
		if _, err := set.Add(ds.Items[i].Label, h); err != nil {
			return nil, err
		}
	}
	if err := set.Build(); err != nil {
		return nil, err
	}
	return set, nil
}

// buildReplicatedBench loads the corpus into a shard set with one
// follower per shard and waits for the followers to catch up, so the
// failover leg measures steady-state serving, not bootstrap.
func buildReplicatedBench(cost emdsearch.CostMatrix, engOpts emdsearch.Options, vecs []emdsearch.Histogram, ds *data.Dataset, shards int, hook func(ctx context.Context, shard, try int, op string) error) (*emdsearch.ShardSet, error) {
	set, err := emdsearch.NewShardSet(cost, engOpts, emdsearch.ShardSetOptions{
		Shards: shards, ShardHook: hook, QuarantineAfter: 1 << 30, Replicas: 1,
	})
	if err != nil {
		return nil, err
	}
	for i, h := range vecs {
		if _, err := set.Add(ds.Items[i].Label, h); err != nil {
			return nil, err
		}
	}
	if err := set.Build(); err != nil {
		return nil, err
	}
	if err := set.WaitReplicasCaughtUp(context.Background()); err != nil {
		return nil, err
	}
	return set, nil
}

// sameShardResults reports bit-identity of two result lists.
func sameShardResults(got, want []emdsearch.Result) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range want {
		if got[i].Index != want[i].Index ||
			math.Float64bits(got[i].Dist) != math.Float64bits(want[i].Dist) {
			return false
		}
	}
	return true
}

// percentileNS returns the p-th percentile of lat in nanoseconds.
func percentileNS(lat []time.Duration, p float64) int64 {
	if len(lat) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return int64(sorted[int(p*float64(len(sorted)-1))])
}
