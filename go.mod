module emdsearch

go 1.22
