package emdsearch

import (
	"fmt"
	"runtime"
	"sync"
)

// BatchResult is the outcome of one query in a batch.
type BatchResult struct {
	// Query is the index of the query within the batch.
	Query   int
	Results []Result
	Stats   *QueryStats
	Err     error
}

// BatchKNN answers many k-NN queries concurrently using up to workers
// goroutines (0 means GOMAXPROCS). The query pipeline is shared and
// read-only during the batch, so per-query state stays on each worker;
// results arrive indexed by query position. The engine must not be
// mutated while a batch is running.
func (e *Engine) BatchKNN(queries []Histogram, k, workers int) ([]BatchResult, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("emdsearch: empty batch")
	}
	if k < 1 {
		return nil, fmt.Errorf("emdsearch: k = %d, want >= 1", k)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	// Build the shared pipeline once, before fanning out.
	if err := e.ensureSearcher(); err != nil {
		return nil, err
	}

	out := make([]BatchResult, len(queries))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for qi := range next {
				results, stats, err := e.KNN(queries[qi], k)
				out[qi] = BatchResult{Query: qi, Results: results, Stats: stats, Err: err}
			}
		}()
	}
	for qi := range queries {
		next <- qi
	}
	close(next)
	wg.Wait()
	return out, nil
}
