package emdsearch

import (
	"runtime"
	"sync"
)

// BatchResult is the outcome of one query in a batch.
type BatchResult struct {
	// Query is the index of the query within the batch.
	Query   int
	Results []Result
	Stats   *QueryStats
	Err     error
}

// BatchKNN answers many k-NN queries concurrently using up to workers
// goroutines (0 means GOMAXPROCS). The query pipeline snapshot is
// built once and shared read-only by all workers; results arrive
// indexed by query position. Like the single-query methods, BatchKNN
// is safe to run while other goroutines mutate the engine — every
// query in the batch answers over the snapshot current when it
// started. Batch workers parallelize *across* queries; they compose
// with Options.Workers (refinement parallelism *within* a query), so
// keep the product of the two near GOMAXPROCS.
func (e *Engine) BatchKNN(queries []Histogram, k, workers int) ([]BatchResult, error) {
	if len(queries) == 0 {
		return nil, badQueryf("empty batch")
	}
	if k < 1 {
		return nil, badQueryf("k = %d, want >= 1", k)
	}
	// Build the shared pipeline once, before fanning out.
	if _, err := e.snapshot(); err != nil {
		return nil, err
	}

	out := make([]BatchResult, len(queries))
	runBatch(queries, workers, func(qi int) {
		results, stats, err := e.KNN(queries[qi], k)
		out[qi] = BatchResult{Query: qi, Results: results, Stats: stats, Err: err}
	})
	return out, nil
}

// runBatch distributes query indices over up to workers goroutines
// (0 or negative means GOMAXPROCS, capped at the batch size).
func runBatch(queries []Histogram, workers int, run func(qi int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for qi := range next {
				run(qi)
			}
		}()
	}
	for qi := range queries {
		next <- qi
	}
	close(next)
	wg.Wait()
}
