package emdsearch

import (
	"context"
	"math"
	"testing"
)

// The cross-layout bit-identity suite. The columnar kernels and the
// quantized pre-filter are pure evaluation-order refactors of the
// per-item reference scan: the chained ranking takes the running max
// of the stage bounds, and the quantized stage never exceeds Red-IM,
// so candidate order, refinement counts, and every returned distance
// must be *byte-identical* across layouts — not merely within an
// epsilon. Any drift means a kernel changed float semantics, which
// would silently change answers under workloads with near-ties.

// layoutVariant is one engine configuration whose answers must match
// the reference per-item scan bit for bit.
type layoutVariant struct {
	name string
	opts Options
}

func layoutVariants() []layoutVariant {
	base := Options{ReducedDims: 8, SampleSize: 10}
	withRef := base
	withRef.ReferenceScan = true
	noQuant := base
	noQuant.DisableQuantizedFilter = true
	oddBlock := base
	oddBlock.FilterBlockSize = 17
	mt := base
	mt.IndexKind = IndexMTree
	vp := base
	vp.IndexKind = IndexVPTree
	vp4 := vp
	vp4.FourPoint = true
	return []layoutVariant{
		{"reference", withRef},
		{"columnar+quantized", base},
		{"columnar", noQuant},
		{"columnar+block17", oddBlock},
		// Metric-index candidate generation replaces the filter scan
		// with a best-first tree traversal. Emissions stay a
		// nondecreasing lower-bounding order, so the *answers* must
		// still be bit-identical; only the work counters may differ.
		{"mtree-index", mt},
		{"vptree-index", vp},
		{"vptree-index+4pt", vp4},
	}
}

// buildLayoutEngine builds one engine per variant over identical data
// (buildEngine's dataset is seeded, so every call sees the same
// vectors) and applies identical soft-deletes.
func buildLayoutEngine(t *testing.T, v layoutVariant, n int) (*Engine, []Histogram) {
	t.Helper()
	eng, queries := buildEngine(t, v.opts, n)
	for _, id := range []int{7, 23} {
		if err := eng.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	return eng, queries
}

// sameResults fails unless two result slices agree on indices and on
// the exact bit pattern of every distance.
func sameResults(t *testing.T, layout, api string, got, want []Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s/%s: %d results, want %d", layout, api, len(got), len(want))
	}
	for i := range want {
		if got[i].Index != want[i].Index {
			t.Fatalf("%s/%s: result %d index %d, want %d", layout, api, i, got[i].Index, want[i].Index)
		}
		if math.Float64bits(got[i].Dist) != math.Float64bits(want[i].Dist) {
			t.Fatalf("%s/%s: result %d dist %x, want %x (index %d)",
				layout, api, i, math.Float64bits(got[i].Dist), math.Float64bits(want[i].Dist), want[i].Index)
		}
	}
}

// fullRanking drains Rank(q) into the complete exact ordering of the
// live database — the strongest equality check available, covering
// every item rather than just the top k.
func fullRanking(t *testing.T, eng *Engine, q Histogram) []Result {
	t.Helper()
	r, err := eng.Rank(q)
	if err != nil {
		t.Fatal(err)
	}
	var out []Result
	for {
		idx, dist, ok := r.Next()
		if !ok {
			return out
		}
		out = append(out, Result{Index: idx, Dist: dist})
	}
}

func TestCrossLayoutBitIdentity(t *testing.T) {
	const n, k = 120, 7
	variants := layoutVariants()
	engines := make([]*Engine, len(variants))
	var queries []Histogram
	for i, v := range variants {
		engines[i], queries = buildLayoutEngine(t, v, n)
	}
	ref := engines[0]
	pred := func(i int) bool { return i%3 != 0 }

	for qi, q := range queries {
		wantKNN, wantStats, err := ref.KNN(q, k)
		if err != nil {
			t.Fatal(err)
		}
		eps, err := ref.EpsilonForCount(q, 15)
		if err != nil {
			t.Fatal(err)
		}
		wantRange, _, err := ref.Range(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		wantWhere, _, err := ref.KNNWhere(q, k, pred)
		if err != nil {
			t.Fatal(err)
		}
		wantRank := fullRanking(t, ref, q)
		if len(wantRank) != ref.Alive() {
			t.Fatalf("reference ranking covers %d items, want %d", len(wantRank), ref.Alive())
		}

		for vi := 1; vi < len(variants); vi++ {
			name, eng := variants[vi].name, engines[vi]
			got, stats, err := eng.KNN(q, k)
			if err != nil {
				t.Fatal(err)
			}
			sameResults(t, name, "KNN", got, wantKNN)
			// Refinement counts are part of the contract for the scan
			// layouts: the extra quantized stage may only pre-prune what
			// Red-IM would have pruned anyway, so the exact-EMD work must
			// be unchanged. An index traversal orders candidates by a
			// (possibly different, still lower-bounding) metric, so only
			// its answers — not its work counters — must match.
			if !stats.IndexUsed {
				if stats.Refinements != wantStats.Refinements {
					t.Errorf("%s: query %d refined %d items, reference refined %d",
						name, qi, stats.Refinements, wantStats.Refinements)
				}
				if stats.Pulled != wantStats.Pulled {
					t.Errorf("%s: query %d pulled %d candidates, reference pulled %d",
						name, qi, stats.Pulled, wantStats.Pulled)
				}
			}

			gotRange, _, err := eng.Range(q, eps)
			if err != nil {
				t.Fatal(err)
			}
			sameResults(t, name, "Range", gotRange, wantRange)

			gotWhere, _, err := eng.KNNWhere(q, k, pred)
			if err != nil {
				t.Fatal(err)
			}
			sameResults(t, name, "KNNWhere", gotWhere, wantWhere)

			ans, err := eng.KNNCtx(context.Background(), q, k)
			if err != nil {
				t.Fatal(err)
			}
			if ans.Degraded {
				t.Fatalf("%s: KNNCtx degraded without a deadline", name)
			}
			sameResults(t, name, "KNNCtx", ans.Results, wantKNN)

			sameResults(t, name, "Rank", fullRanking(t, eng, q), wantRank)
		}
	}

	// BatchKNN across all queries at once, per variant.
	wantBatch, err := ref.BatchKNN(queries, k, 2)
	if err != nil {
		t.Fatal(err)
	}
	for vi := 1; vi < len(variants); vi++ {
		name, eng := variants[vi].name, engines[vi]
		gotBatch, err := eng.BatchKNN(queries, k, 2)
		if err != nil {
			t.Fatal(err)
		}
		for bi := range wantBatch {
			if gotBatch[bi].Err != nil || wantBatch[bi].Err != nil {
				t.Fatalf("%s: batch query %d errs: got %v, want %v", name, bi, gotBatch[bi].Err, wantBatch[bi].Err)
			}
			sameResults(t, name, "BatchKNN", gotBatch[bi].Results, wantBatch[bi].Results)
		}
	}
}

// TestCrossLayoutStageChains pins which stage chain each layout
// assembles, so a configuration regression (quantized stage silently
// missing, reference path silently columnar) cannot hide behind the
// bit-identity of the answers.
func TestCrossLayoutStageChains(t *testing.T) {
	want := map[string][]string{
		"reference":          {"Red-IM", "Red-EMD"},
		"columnar+quantized": {"Q-Red-IM", "Red-IM", "Red-EMD"},
		"columnar":           {"Red-IM", "Red-EMD"},
		"columnar+block17":   {"Q-Red-IM", "Red-IM", "Red-EMD"},
		"mtree-index":        {"MTree(Red-EMD)"},
		"vptree-index":       {"VPTree(Red-EMD)"},
		"vptree-index+4pt":   {"VPTree(Red-EMD)"},
	}
	for _, v := range layoutVariants() {
		eng, queries := buildLayoutEngine(t, v, 60)
		_, stats, err := eng.KNN(queries[0], 3)
		if err != nil {
			t.Fatal(err)
		}
		names := make([]string, len(stats.Stages))
		for i, st := range stats.Stages {
			names[i] = st.Name
		}
		w := want[v.name]
		if len(names) != len(w) {
			t.Fatalf("%s: stage chain %v, want %v", v.name, names, w)
		}
		for i := range w {
			if names[i] != w[i] {
				t.Fatalf("%s: stage chain %v, want %v", v.name, names, w)
			}
		}
		checkStageAccounting(t, eng, stats, w)
	}
}
