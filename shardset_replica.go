package emdsearch

import (
	"bytes"
	"context"
	"fmt"
	"sync"

	"emdsearch/internal/persist"
	"emdsearch/internal/replica"
	"emdsearch/internal/search"
	"emdsearch/internal/shardset"
)

// This file holds the ShardSet's replication layer: per-shard
// follower engines fed by WAL-record shipping (internal/replica),
// failover dispatch closures for the scatter executor, freshness
// certification, and follower promotion.
//
// The flow: every acknowledged mutation (Add/Delete under s.mu —
// post-fsync when a WAL is attached) is Acked to the shard's shipper,
// which assigns it a dense LSN and delivers it in order over an
// in-process replica.Link to the follower engine, replayed with the
// same idempotent discipline crash recovery uses. Followers bootstrap
// at Build from a snapshot of their primary (the Save format
// verbatim) and then stream incrementally. When a query's dispatch to
// a primary hard-faults or is quarantined, the scatter executor
// re-dispatches to the follower; the coverage certificate gains a
// Freshness entry bounding what the follower could have missed.

// shardReplica is one shard's replication state. The follower and
// gate pointers are nil until the Build-time bootstrap and are
// swapped only under the set's rw lock (Promote).
type shardReplica struct {
	follower *Engine
	gate     *Gate
	ship     *replica.Shipper
}

// initReplicas creates each shard's shipper. Followers come later
// (bootstrapReplicas): until then shipped records queue in the
// shipper and the bootstrap's Rebase supersedes them.
func (s *ShardSet) initReplicas() {
	if s.opts.Replicas <= 0 {
		return
	}
	s.replicas = make([]*shardReplica, len(s.engines))
	for i := range s.engines {
		s.replicas[i] = s.newShardReplica(i)
	}
}

// newShardReplica wires shard's ship link: an in-process
// replica.Link applying records to the follower engine, with the
// ReplicaShipHook fault-injection seam in front.
func (s *ShardSet) newShardReplica(shard int) *shardReplica {
	r := &shardReplica{}
	link := replica.LinkFunc(func(ctx context.Context, rec replica.Record) error {
		if h := s.opts.ReplicaShipHook; h != nil {
			if err := h(shard, rec.LSN); err != nil {
				return err
			}
		}
		return s.applyToFollower(shard, rec.Rec)
	})
	r.ship = replica.NewShipper(link, &shardset.Backoff{Base: s.opts.RetryBase, Cap: s.opts.RetryCap, Seed: s.opts.Seed})
	return r
}

// shipMutation Acks one acknowledged mutation to the shard's shipper.
// Called under s.mu, so ship order equals mutation order. A no-op
// without replicas.
func (s *ShardSet) shipMutation(shard int, rec persist.WALRecord) {
	if s.replicas == nil {
		return
	}
	s.replicas[shard].ship.Ack(rec)
}

// applyToFollower replays one shipped record into shard's follower,
// idempotently — the discipline RecoverEngine uses, so a redelivered
// record (the shipper retries failed sends) is a harmless skip.
func (s *ShardSet) applyToFollower(shard int, rec persist.WALRecord) error {
	s.rw.RLock()
	f := s.replicas[shard].follower
	s.rw.RUnlock()
	if f == nil {
		return fmt.Errorf("emdsearch: shard %d follower not bootstrapped", shard)
	}
	switch rec.Op {
	case persist.WALAdd:
		switch {
		case rec.ID < f.Len():
			return nil // already applied
		case rec.ID == f.Len():
			_, err := f.Add(rec.Label, rec.Vector)
			return err
		default:
			return fmt.Errorf("emdsearch: shard %d follower replay gap: record adds item %d but follower ends at %d", shard, rec.ID, f.Len())
		}
	case persist.WALDelete:
		if rec.ID < 0 || rec.ID >= f.Len() {
			return fmt.Errorf("emdsearch: shard %d follower replay: delete of unknown item %d", shard, rec.ID)
		}
		if f.Deleted(rec.ID) {
			return nil
		}
		return f.Delete(rec.ID)
	default:
		return fmt.Errorf("emdsearch: shard %d follower replay: unknown op %d", shard, rec.Op)
	}
}

// bootstrapReplicas seeds every shard's follower from a snapshot of
// its primary, in parallel, then rebases each shipper to the
// primary's current LSN (mutations are quiesced under s.mu, so the
// snapshot and the rebase point agree). Records queued before the
// bootstrap are dropped — the snapshot carries them.
func (s *ShardSet) bootstrapReplicas() error {
	if s.replicas == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	errs := make([]error, len(s.replicas))
	var wg sync.WaitGroup
	for i := range s.replicas {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = s.bootstrapReplicaLocked(i)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("emdsearch: bootstrap shard %d follower: %w", i, err)
		}
	}
	return nil
}

// bootstrapReplicaLocked snapshots shard's primary, loads it into a
// fresh follower engine, builds the follower's pipeline, installs it,
// and rebases the shipper. Caller holds s.mu (no concurrent
// mutations); safe to run for different shards concurrently.
func (s *ShardSet) bootstrapReplicaLocked(shard int) error {
	var buf bytes.Buffer
	if err := s.engines[shard].Save(&buf); err != nil {
		return err
	}
	f, err := LoadEngine(&buf, s.cost, s.engOpts)
	if err != nil {
		return err
	}
	if err := f.Build(); err != nil {
		return err
	}
	r := s.replicas[shard]
	s.rw.Lock()
	r.follower = f
	r.gate = NewGate(f, s.opts.Gate)
	s.rw.Unlock()
	r.ship.Rebase(r.ship.Status().PrimaryLSN)
	return nil
}

// followerGate returns shard's serving follower gate, nil before the
// bootstrap.
func (s *ShardSet) followerGate(shard int) *Gate {
	if s.replicas == nil {
		return nil
	}
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.replicas[shard].gate
}

// replicaAt returns shard's current replication state under the
// pointer-swap lock — Promote replaces the element concurrently with
// queries.
func (s *ShardSet) replicaAt(shard int) *shardReplica {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.replicas[shard]
}

// knnFailover builds this query's follower re-dispatch closure, nil
// when the set runs without replicas. The follower's applied LSN is
// captured BEFORE its query dispatches: the snapshot the follower
// serves from can only contain more, so the freshness bound computed
// at merge time (primary LSN then, applied LSN now) is sound.
func (s *ShardSet) knnFailover(q Histogram, k int, shared *search.SharedKNN) shardset.Failover[shardServe] {
	if s.replicas == nil {
		return nil
	}
	return func(ctx context.Context, shard int) (shardServe, error) {
		s.failovers.Add(1)
		g := s.followerGate(shard)
		if g == nil {
			return shardServe{}, fmt.Errorf("emdsearch: shard %d follower not bootstrapped", shard)
		}
		applied := s.replicaAt(shard).ship.Status().AppliedLSN
		if h := s.opts.ShardHook; h != nil {
			if err := h(ctx, shard, 0, "knn-failover"); err != nil {
				return shardServe{}, err
			}
		}
		ans, err := g.knnShared(ctx, q, k, shared, s.toGlobal(shard))
		if err != nil {
			if ans != nil && ans.Degraded {
				return shardServe{knn: ans, degraded: true, appliedLSN: applied}, nil
			}
			return shardServe{}, err
		}
		return shardServe{knn: ans, degraded: ans.Degraded, appliedLSN: applied}, nil
	}
}

// rangeFailover is knnFailover for range queries.
func (s *ShardSet) rangeFailover(q Histogram, eps float64) shardset.Failover[shardServe] {
	if s.replicas == nil {
		return nil
	}
	return func(ctx context.Context, shard int) (shardServe, error) {
		s.failovers.Add(1)
		g := s.followerGate(shard)
		if g == nil {
			return shardServe{}, fmt.Errorf("emdsearch: shard %d follower not bootstrapped", shard)
		}
		applied := s.replicaAt(shard).ship.Status().AppliedLSN
		if h := s.opts.ShardHook; h != nil {
			if err := h(ctx, shard, 0, "range-failover"); err != nil {
				return shardServe{}, err
			}
		}
		res, stats, err := g.Range(ctx, q, eps)
		if err != nil {
			if stats != nil && stats.Cancelled {
				return shardServe{rng: res, rngStats: stats, degraded: true, appliedLSN: applied}, nil
			}
			return shardServe{}, err
		}
		return shardServe{rng: res, rngStats: stats, degraded: stats != nil && stats.Cancelled, appliedLSN: applied}, nil
	}
}

// certifyFreshness appends a failed-over shard's freshness entry to
// the coverage certificate and charges its lag to ItemsUncovered. It
// reports whether the follower lagged — which makes the shard (and
// the answer) Degraded: a stale slice must never pass as complete.
func (s *ShardSet) certifyFreshness(cov *ShardCoverage, o shardset.Outcome[shardServe]) (lagging bool) {
	if !o.FailedOver {
		return false
	}
	primary := s.replicaAt(o.Shard).ship.Status().PrimaryLSN
	fresh := ShardFreshness{
		Shard:      o.Shard,
		PrimaryLSN: primary,
		AppliedLSN: o.Value.appliedLSN,
		Lag:        primary - o.Value.appliedLSN,
	}
	cov.Freshness = append(cov.Freshness, fresh)
	if fresh.Lag > 0 {
		cov.ItemsUncovered += int(fresh.Lag)
		return true
	}
	return false
}

// ShardReplica is a point-in-time view of one shard's replication:
// the primary's last acknowledged LSN, the follower's applied LSN,
// and the ship-path error counters.
type ShardReplica struct {
	Shard        int    `json:"shard"`
	Bootstrapped bool   `json:"bootstrapped"`
	PrimaryLSN   int64  `json:"primary_lsn"`
	AppliedLSN   int64  `json:"applied_lsn"`
	Lag          int64  `json:"lag"`
	ShipErrors   uint64 `json:"ship_errors"`
	LastError    string `json:"last_error,omitempty"`
}

// Replica returns shard i's replication status; ok is false when the
// set runs without replicas.
func (s *ShardSet) Replica(i int) (ShardReplica, bool) {
	if s.replicas == nil {
		return ShardReplica{}, false
	}
	st := s.replicaAt(i).ship.Status()
	return ShardReplica{
		Shard:        i,
		Bootstrapped: s.followerGate(i) != nil,
		PrimaryLSN:   st.PrimaryLSN,
		AppliedLSN:   st.AppliedLSN,
		Lag:          st.Lag,
		ShipErrors:   st.ShipErrors,
		LastError:    st.LastError,
	}, true
}

// WaitReplicasCaughtUp blocks until every follower has applied every
// acknowledged mutation (or ctx expires) — the quiescence point at
// which a failover answer is guaranteed byte-identical to the healthy
// path. A no-op without replicas.
func (s *ShardSet) WaitReplicasCaughtUp(ctx context.Context) error {
	if s.replicas == nil {
		return nil
	}
	for i := range s.replicas {
		if err := s.replicaAt(i).ship.WaitCaughtUp(ctx); err != nil {
			return fmt.Errorf("emdsearch: shard %d follower catch-up: %w", i, err)
		}
	}
	return nil
}

// Promote makes shard's follower the new primary: it waits for the
// follower to catch up (bounded by ctx), swaps it into the serving
// path, and bootstraps a fresh follower from the promoted engine. The
// old primary is discarded from the set (its engine object survives
// for the caller to inspect via the pre-promotion Engine(i) pointer).
// Promotion does not move durable logging: the old primary's WAL, if
// any, stays attached to the old engine — re-attach with OpenWAL
// after a Checkpoint to resume logging on the new primary.
//
// Promote is a mutation (Engine discipline: not concurrent with other
// mutations); queries may run throughout.
func (s *ShardSet) Promote(ctx context.Context, shard int) error {
	if s.replicas == nil {
		return fmt.Errorf("emdsearch: Promote(%d): set has no replicas", shard)
	}
	if shard < 0 || shard >= len(s.engines) {
		return badQueryf("Promote(%d): shard out of range [0, %d)", shard, len(s.engines))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	r := s.replicas[shard]
	if s.followerGate(shard) == nil {
		return fmt.Errorf("emdsearch: Promote(%d): follower not bootstrapped (call Build first)", shard)
	}
	// Mutations are quiesced (s.mu); drain the ship queue so the
	// follower holds every acknowledged mutation before taking over.
	if err := r.ship.WaitCaughtUp(ctx); err != nil {
		return fmt.Errorf("emdsearch: Promote(%d): %w", shard, err)
	}
	r.ship.Close()
	next := s.newShardReplica(shard)
	s.rw.Lock()
	s.engines[shard] = r.follower
	s.gates[shard] = r.gate
	s.replicas[shard] = next
	s.rw.Unlock()
	if err := s.bootstrapReplicaLocked(shard); err != nil {
		return fmt.Errorf("emdsearch: Promote(%d): bootstrap new follower: %w", shard, err)
	}
	return nil
}

// Close stops the set's replica shippers. Queries keep working
// (followers just stop receiving new mutations, with the lag honestly
// reported); call it when discarding the set. A no-op without
// replicas.
func (s *ShardSet) Close() {
	for i := range s.replicas {
		s.replicaAt(i).ship.Close()
	}
}
