package emdsearch

import (
	"math"
	"sort"
	"testing"
)

func TestRankStreamsInExactOrder(t *testing.T) {
	eng, queries := buildEngine(t, Options{ReducedDims: 8, SampleSize: 16}, 100)
	q := queries[0]
	r, err := eng.Rank(q)
	if err != nil {
		t.Fatal(err)
	}
	var got []Result
	for {
		idx, d, ok := r.Next()
		if !ok {
			break
		}
		got = append(got, Result{Index: idx, Dist: d})
	}
	if len(got) != eng.Len() {
		t.Fatalf("ranking yielded %d items, want %d", len(got), eng.Len())
	}
	// Monotone distances.
	for i := 1; i < len(got); i++ {
		if got[i].Dist < got[i-1].Dist-1e-12 {
			t.Fatalf("out of order at %d: %g after %g", i, got[i].Dist, got[i-1].Dist)
		}
	}
	// Same set and same values as direct computation.
	want := make([]Result, eng.Len())
	for i := 0; i < eng.Len(); i++ {
		want[i] = Result{Index: i, Dist: exactDist(t, eng, q, i)}
	}
	sort.Slice(want, func(i, j int) bool { return want[i].Dist < want[j].Dist })
	for i := range want {
		if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
			t.Fatalf("rank %d: dist %g, want %g", i, got[i].Dist, want[i].Dist)
		}
	}
}

func TestRankMatchesKNNPrefix(t *testing.T) {
	eng, queries := buildEngine(t, Options{ReducedDims: 8, SampleSize: 16}, 120)
	q := queries[1]
	const k = 7
	knn, _, err := eng.KNN(q, k)
	if err != nil {
		t.Fatal(err)
	}
	r, err := eng.Rank(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		_, d, ok := r.Next()
		if !ok {
			t.Fatalf("ranking exhausted at %d", i)
		}
		if math.Abs(d-knn[i].Dist) > 1e-9 {
			t.Fatalf("prefix %d: ranking dist %g, KNN dist %g", i, d, knn[i].Dist)
		}
	}
}

func TestRankScanEngine(t *testing.T) {
	eng, queries := buildEngine(t, Options{}, 40)
	r, err := eng.Rank(queries[0])
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	prev := -1.0
	for {
		_, d, ok := r.Next()
		if !ok {
			break
		}
		if d < prev {
			t.Fatal("scan-mode ranking out of order")
		}
		prev = d
		count++
	}
	if count != eng.Len() {
		t.Fatalf("yielded %d, want %d", count, eng.Len())
	}
}

func TestRankValidation(t *testing.T) {
	eng, _ := buildEngine(t, Options{ReducedDims: 4, SampleSize: 8}, 20)
	if _, err := eng.Rank(Histogram{0.5, 0.5}); err == nil {
		t.Error("accepted wrong-dimensional query")
	}
}
