package emdsearch

import (
	"context"
)

// KNNWhere answers a k-NN query restricted to items satisfying pred
// (e.g. a label or metadata constraint — faceted similarity search).
// The filter chain still orders all candidates, but items failing the
// predicate are skipped before refinement, so the query stays exact
// over the restricted set while spending exact-EMD work only on
// matching items. Refinements go through the same threshold-aware
// bounded kernel as KNN (with Options.Workers parallelism), so the
// RefinesAborted/WarmStartHits metrics cover this path too. pred must
// be deterministic for the duration of the call. Safe for concurrent
// use (the predicate is invoked from the calling goroutine only,
// never from refinement workers).
func (e *Engine) KNNWhere(q Histogram, k int, pred func(index int) bool) ([]Result, *QueryStats, error) {
	ans, err := e.KNNWhereCtx(context.Background(), q, k, pred)
	if err != nil {
		return nil, nil, err
	}
	return ans.Results, ans.Stats, nil
}

// KNNWithLabel is KNNWhere restricted to items carrying the given
// label. The labels are read lock-free from the query's snapshot —
// captured when the pipeline was built — so the predicate sees state
// consistent with the ranking even while concurrent Add/Build calls
// mutate the engine, and the hot loop takes no locks.
func (e *Engine) KNNWithLabel(q Histogram, k int, label string) ([]Result, *QueryStats, error) {
	ans, err := e.KNNWithLabelCtx(context.Background(), q, k, label)
	if err != nil {
		return nil, nil, err
	}
	return ans.Results, ans.Stats, nil
}
