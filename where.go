package emdsearch

import (
	"fmt"
	"math"

	"emdsearch/internal/search"
)

// KNNWhere answers a k-NN query restricted to items satisfying pred
// (e.g. a label or metadata constraint — faceted similarity search).
// Items failing the predicate are treated as infinitely far: the
// filter chain still orders candidates, but only matching items are
// refined and returned, so the query stays exact over the restricted
// set. pred must be deterministic for the duration of the call. Safe
// for concurrent use (the predicate is invoked from the calling
// goroutine only).
func (e *Engine) KNNWhere(q Histogram, k int, pred func(index int) bool) ([]Result, *QueryStats, error) {
	if pred == nil {
		return nil, nil, fmt.Errorf("emdsearch: nil predicate")
	}
	if err := e.validateQuery(q); err != nil {
		e.metrics.queryError()
		return nil, nil, err
	}
	s, err := e.snapshot()
	if err != nil {
		e.metrics.queryError()
		return nil, nil, err
	}
	ranking, err := s.searcher.Ranking(q)
	if err != nil {
		e.metrics.queryError()
		return nil, nil, err
	}
	results, stats, err := search.KNN(ranking, func(i int) float64 {
		if s.deleted[i] || !pred(i) {
			return math.Inf(1)
		}
		return s.dist.Distance(q, s.vectors[i])
	}, k)
	if err != nil {
		e.metrics.queryError()
		return nil, nil, err
	}
	live := results[:0]
	for _, r := range results {
		if !math.IsInf(r.Dist, 1) {
			live = append(live, r)
		}
	}
	e.metrics.observe(metricKNN, stats)
	return live, stats, nil
}

// KNNWithLabel is KNNWhere restricted to items carrying the given
// label.
func (e *Engine) KNNWithLabel(q Histogram, k int, label string) ([]Result, *QueryStats, error) {
	return e.KNNWhere(q, k, func(i int) bool { return e.Label(i) == label })
}
