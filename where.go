package emdsearch

import (
	"fmt"
	"math"

	"emdsearch/internal/emd"
	"emdsearch/internal/search"
)

// KNNWhere answers a k-NN query restricted to items satisfying pred
// (e.g. a label or metadata constraint — faceted similarity search).
// Items failing the predicate are treated as infinitely far: the
// filter chain still orders candidates, but only matching items are
// refined and returned, so the query stays exact over the restricted
// set. pred must be deterministic for the duration of the call.
func (e *Engine) KNNWhere(q Histogram, k int, pred func(index int) bool) ([]Result, *QueryStats, error) {
	if pred == nil {
		return nil, nil, fmt.Errorf("emdsearch: nil predicate")
	}
	if err := emd.Validate(q); err != nil {
		return nil, nil, fmt.Errorf("emdsearch: query: %w", err)
	}
	if len(q) != e.Dim() {
		return nil, nil, fmt.Errorf("emdsearch: query has %d dimensions, index stores %d", len(q), e.Dim())
	}
	if err := e.ensureSearcher(); err != nil {
		return nil, nil, err
	}
	ranking, err := e.searcher.Ranking(q)
	if err != nil {
		return nil, nil, err
	}
	vectors := e.store.Vectors()
	results, stats, err := search.KNN(ranking, func(i int) float64 {
		if e.deleted[i] || !pred(i) {
			return math.Inf(1)
		}
		return e.dist.Distance(q, vectors[i])
	}, k)
	if err != nil {
		return nil, nil, err
	}
	live := results[:0]
	for _, r := range results {
		if !math.IsInf(r.Dist, 1) {
			live = append(live, r)
		}
	}
	return live, stats, nil
}

// KNNWithLabel is KNNWhere restricted to items carrying the given
// label.
func (e *Engine) KNNWithLabel(q Histogram, k int, label string) ([]Result, *QueryStats, error) {
	return e.KNNWhere(q, k, func(i int) bool { return e.store.Item(i).Label == label })
}
