package emdsearch

import (
	"testing"

	"emdsearch/internal/data"
)

func TestBatchKNNMatchesSequential(t *testing.T) {
	eng, queries := buildEngine(t, Options{ReducedDims: 8, SampleSize: 16}, 150)
	batch, err := eng.BatchKNN(queries, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(queries) {
		t.Fatalf("batch returned %d results, want %d", len(batch), len(queries))
	}
	for qi, br := range batch {
		if br.Err != nil {
			t.Fatalf("query %d: %v", qi, br.Err)
		}
		if br.Query != qi {
			t.Fatalf("result %d labeled as query %d", qi, br.Query)
		}
		want, _, err := eng.KNN(queries[qi], 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(br.Results) != len(want) {
			t.Fatalf("query %d: %d results, want %d", qi, len(br.Results), len(want))
		}
		for i := range want {
			if br.Results[i] != want[i] {
				t.Fatalf("query %d result %d: got %+v, want %+v", qi, i, br.Results[i], want[i])
			}
		}
	}
}

func TestBatchKNNValidation(t *testing.T) {
	eng, queries := buildEngine(t, Options{}, 20)
	if _, err := eng.BatchKNN(nil, 3, 2); err == nil {
		t.Error("accepted empty batch")
	}
	if _, err := eng.BatchKNN(queries, 0, 2); err == nil {
		t.Error("accepted k=0")
	}
}

func TestBatchKNNDefaultWorkers(t *testing.T) {
	eng, queries := buildEngine(t, Options{ReducedDims: 4, SampleSize: 8}, 30)
	batch, err := eng.BatchKNN(queries, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, br := range batch {
		if br.Err != nil {
			t.Fatal(br.Err)
		}
	}
}

func TestBatchKNNSurfacesPerQueryErrors(t *testing.T) {
	eng, queries := buildEngine(t, Options{ReducedDims: 4, SampleSize: 8}, 30)
	bad := append([]Histogram{}, queries...)
	bad[1] = Histogram{0.5, 0.5} // wrong dimensionality
	batch, err := eng.BatchKNN(bad, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if batch[1].Err == nil {
		t.Error("invalid query did not surface an error")
	}
	if batch[0].Err != nil || batch[2].Err != nil {
		t.Error("valid queries failed")
	}
}

func TestBatchKNNWithIndexedCentroidBase(t *testing.T) {
	// Exercises the k-d tree base ranking under concurrency (run with
	// -race in CI): the tree and stage closures are shared read-only.
	ds, err := data.ColorImages(160, 9)
	if err != nil {
		t.Fatal(err)
	}
	vecs, queries, err := ds.Split(6)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(ds.Cost, Options{
		ReducedDims: 8,
		SampleSize:  16,
		Positions:   ds.Positions,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range vecs {
		eng.Add(ds.Items[i].Label, h)
	}
	if err := eng.Build(); err != nil {
		t.Fatal(err)
	}
	batch, err := eng.BatchKNN(queries, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	for qi, br := range batch {
		if br.Err != nil {
			t.Fatalf("query %d: %v", qi, br.Err)
		}
		want, _, err := eng.KNN(queries[qi], 4)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if br.Results[i] != want[i] {
				t.Fatalf("query %d result %d mismatch", qi, i)
			}
		}
	}
}
