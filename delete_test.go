package emdsearch

import (
	"math"
	"testing"
)

func TestDeleteValidation(t *testing.T) {
	eng, _ := buildEngine(t, Options{ReducedDims: 4, SampleSize: 8}, 20)
	if err := eng.Delete(-1); err == nil {
		t.Error("accepted negative index")
	}
	if err := eng.Delete(100); err == nil {
		t.Error("accepted out-of-range index")
	}
	if err := eng.Delete(3); err != nil {
		t.Fatal(err)
	}
	if err := eng.Delete(3); err == nil {
		t.Error("accepted double delete")
	}
	if !eng.Deleted(3) || eng.Deleted(4) {
		t.Error("Deleted() wrong")
	}
	if eng.Alive() != 19 {
		t.Errorf("Alive = %d, want 19", eng.Alive())
	}
}

func TestDeletedItemsExcludedFromQueries(t *testing.T) {
	eng, queries := buildEngine(t, Options{ReducedDims: 8, SampleSize: 16}, 100)
	q := queries[0]

	before, _, err := eng.KNN(q, 3)
	if err != nil {
		t.Fatal(err)
	}
	victim := before[0].Index
	if err := eng.Delete(victim); err != nil {
		t.Fatal(err)
	}

	after, _, err := eng.KNN(q, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range after {
		if r.Index == victim {
			t.Fatal("deleted item returned by KNN")
		}
		if math.IsInf(r.Dist, 1) {
			t.Fatal("infinite distance in results")
		}
	}
	// The old second-best becomes the new best.
	if after[0].Index != before[1].Index {
		t.Errorf("new 1-NN %d, want promoted %d", after[0].Index, before[1].Index)
	}

	// Range excludes it too.
	results, _, err := eng.Range(q, before[0].Dist+0.1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Index == victim {
			t.Fatal("deleted item returned by Range")
		}
	}
	ids, err := eng.RangeIDs(q, before[0].Dist+0.1)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if id == victim {
			t.Fatal("deleted item returned by RangeIDs")
		}
	}

	// Rank skips it.
	r, err := eng.Rank(q)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for {
		idx, _, ok := r.Next()
		if !ok {
			break
		}
		if idx == victim {
			t.Fatal("deleted item emitted by Rank")
		}
		count++
	}
	if count != eng.Alive() {
		t.Errorf("Rank yielded %d items, want %d", count, eng.Alive())
	}

	// ApproxKNN skips it.
	approx, _, err := eng.ApproxKNN(q, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range approx {
		if a.Index == victim {
			t.Fatal("deleted item returned by ApproxKNN")
		}
	}
}

func TestDeleteMoreThanKSurvivors(t *testing.T) {
	eng, queries := buildEngine(t, Options{}, 10)
	for i := 0; i < 8; i++ {
		if err := eng.Delete(i); err != nil {
			t.Fatal(err)
		}
	}
	results, _, err := eng.KNN(queries[0], 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results with 2 live items, want 2", len(results))
	}
	for _, r := range results {
		if r.Index < 8 {
			t.Fatalf("deleted item %d returned", r.Index)
		}
	}
}
